#ifndef SLACKER_SLACKER_MIGRATION_SUPERVISOR_H_
#define SLACKER_SLACKER_MIGRATION_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/slacker/cluster.h"
#include "src/slacker/migration.h"
#include "src/slacker/options.h"

namespace slacker {

/// Retry policy for a supervised migration.
struct SupervisorOptions {
  /// Attempts before giving up (first try included).
  int max_attempts = 5;
  /// Backoff before attempt n+1 is initial * multiplier^(n-1), capped
  /// at max_backoff, with +-jitter applied multiplicatively so a fleet
  /// of supervisors retrying the same dead target doesn't thunder.
  SimTime initial_backoff = 1.0;
  double backoff_multiplier = 2.0;
  SimTime max_backoff = 30.0;
  double jitter = 0.2;
  uint64_t seed = 0x5e9e5eedULL;
  /// Hard ceiling per attempt. A source crash destroys the job without
  /// its done callback ever firing; after this long the supervisor
  /// cancels whatever is left and synthesizes a transient failure.
  /// 0 disables (rely on the job's own watchdog).
  SimTime attempt_timeout = 0.0;

  Status Validate() const;
};

/// Drives one migration to completion across failures: classifies each
/// attempt's outcome as transient (crashes, timeouts, overload — retry
/// with exponential backoff) or permanent (bad arguments, missing
/// tenant — fail fast), re-launches until the tenant lands on the
/// target or the attempt budget runs out, and folds every attempt into
/// one enriched MigrationReport. Resume negotiation makes retries cheap:
/// chunks durably staged by a failed attempt are not re-streamed.
class MigrationSupervisor {
 public:
  using DoneCallback = std::function<void(const MigrationReport&)>;

  MigrationSupervisor(Cluster* cluster, uint64_t tenant_id,
                      uint64_t target_server, MigrationOptions migration,
                      SupervisorOptions options, DoneCallback done);
  ~MigrationSupervisor();

  MigrationSupervisor(const MigrationSupervisor&) = delete;
  MigrationSupervisor& operator=(const MigrationSupervisor&) = delete;

  /// Validates options and launches the first attempt.
  Status Start();

  /// Stops supervising: cancels the in-flight attempt (if any) and
  /// suppresses further retries, so the supervisor resolves with the
  /// attempt's failure instead of relaunching. If the attempt is
  /// already past the point of no return (kTooLateToCancel) the
  /// handover lands and the supervisor reports success. Used by the
  /// upgrade orchestrator's abort path to call off drain evacuations.
  void Quench(const std::string& reason);

  bool finished() const { return finished_; }
  int attempts_made() const { return attempts_made_; }
  const MigrationReport& report() const { return report_; }

  /// True for failures worth retrying: the cluster may heal (crashed
  /// peer restarts, overload drains, watchdog-aborted attempt finds a
  /// faster path next time). Permanent failures (missing tenant, bad
  /// arguments) repeat identically on every retry.
  static bool IsTransient(const Status& status);

 private:
  void LaunchAttempt();
  void ArmAttemptTimeout();
  /// Handles one attempt's outcome; `from_job` reports carry transfer
  /// metrics, synthesized ones (sync start error, timeout) do not.
  void OnAttemptDone(uint64_t generation, const MigrationReport& job_report);
  void RecordAttempt(const Status& status, SimTime start_time,
                     uint64_t resumed_bytes);
  void ScheduleRetry(const Status& status);
  void FinishWith(Status status);

  Cluster* cluster_;
  sim::Simulator* sim_;
  uint64_t tenant_id_;
  uint64_t target_server_;
  MigrationOptions migration_;
  SupervisorOptions options_;
  DoneCallback done_;
  Rng rng_;

  /// Inert when the cluster has no tracer installed.
  obs::Tracer* tracer_ = nullptr;
  std::string track_;
  obs::TraceSpan attempt_span_;

  int attempts_made_ = 0;
  /// Bumped when an attempt is resolved (done fired or timeout
  /// synthesized); stale job callbacks compare against it and bail.
  uint64_t attempt_generation_ = 0;
  bool attempt_inflight_ = false;
  SimTime attempt_start_ = 0.0;
  /// Set after a kCorruption failure: the staged chunks are suspect, so
  /// the next attempt streams from scratch.
  bool disable_resume_ = false;
  bool quenched_ = false;
  bool finished_ = false;

  MigrationReport report_;
  /// See MigrationJob::alive_.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace slacker

#endif  // SLACKER_SLACKER_MIGRATION_SUPERVISOR_H_
