#include "src/slacker/cluster.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace slacker {

Server::Server(sim::Simulator* sim, uint64_t id, const ClusterOptions& options,
               MigrationContext* ctx)
    : id_(id),
      disk_(sim, options.disk, "disk-" + std::to_string(id)),
      cpu_(sim, options.cpu),
      shared_pool_(options.multitenancy == MultitenancyModel::kSharedProcess
                       ? std::make_unique<storage::BufferPool>(
                             storage::BufferPoolOptions{
                                 options.shared_buffer_bytes / (16 * kKiB)})
                       : nullptr),
      tenants_(sim, &disk_, &cpu_, shared_pool_.get()),
      monitor_(options.monitor_window),
      controller_(std::make_unique<MigrationController>(ctx, id)) {
  controller_->set_incoming_options(options.incoming_migration);
}

Cluster::Cluster(sim::Simulator* sim, const ClusterOptions& options)
    : sim_(sim), options_(options) {
  servers_.reserve(options.num_servers);
  for (int i = 0; i < options.num_servers; ++i) {
    servers_.push_back(
        std::make_unique<Server>(sim, static_cast<uint64_t>(i), options, this));
  }
  // Wire each server's monitor to probe outstanding client work for the
  // tenants it currently hosts, so a stalled server still reports
  // rising latency to the controller.
  for (auto& server : servers_) {
    Server* raw = server.get();
    raw->monitor()->SetOutstandingProbe([this, raw](SimTime now) {
      double worst = 0.0;
      for (uint64_t tenant : directory_.TenantsOn(raw->id())) {
        auto it = pools_by_tenant_.find(tenant);
        if (it == pools_by_tenant_.end()) continue;
        for (workload::ClientPool* pool : it->second) {
          worst = std::max(worst, pool->OldestOutstandingAgeMs(now));
        }
      }
      return worst;
    });
  }
}

Cluster::~Cluster() = default;

Server* Cluster::server(uint64_t id) {
  return id < servers_.size() ? servers_[id].get() : nullptr;
}

Result<engine::TenantDb*> Cluster::AddTenant(
    uint64_t server_id, const engine::TenantConfig& config, bool load) {
  Server* host = server(server_id);
  if (host == nullptr) return Status::NotFound("no such server");
  Result<engine::TenantDb*> db =
      host->tenants()->CreateTenant(config, load, /*frozen=*/false);
  if (!db.ok()) return db;
  SLACKER_RETURN_IF_ERROR(directory_.Register(config.tenant_id, server_id));
  return db;
}

Status Cluster::RemoveTenant(uint64_t tenant_id) {
  Result<uint64_t> host = directory_.Lookup(tenant_id);
  SLACKER_RETURN_IF_ERROR(host.status());
  SLACKER_RETURN_IF_ERROR(directory_.Remove(tenant_id));
  return server(*host)->tenants()->DeleteTenant(tenant_id);
}

Status Cluster::StartMigration(uint64_t tenant_id, uint64_t target_server,
                               const MigrationOptions& options,
                               MigrationJob::DoneCallback done) {
  Result<uint64_t> host = directory_.Lookup(tenant_id);
  SLACKER_RETURN_IF_ERROR(host.status());
  if (server(target_server) == nullptr) {
    return Status::NotFound("no such target server");
  }
  return server(*host)->controller()->StartMigration(tenant_id, target_server,
                                                     options, std::move(done));
}

MigrationJob* Cluster::ActiveJob(uint64_t tenant_id) {
  const Result<uint64_t> host = directory_.Lookup(tenant_id);
  if (!host.ok()) return nullptr;
  return server(*host)->controller()->ActiveJob(tenant_id);
}

Status Cluster::CancelMigration(uint64_t tenant_id,
                                const std::string& reason) {
  const Result<uint64_t> host = directory_.Lookup(tenant_id);
  SLACKER_RETURN_IF_ERROR(host.status());
  return server(*host)->controller()->CancelMigration(tenant_id, reason);
}

engine::TenantDb* Cluster::Resolve(uint64_t tenant_id) {
  const Result<uint64_t> host = directory_.Lookup(tenant_id);
  if (!host.ok()) return nullptr;
  return server(*host)->tenants()->Get(tenant_id);
}

workload::ClientPool::LatencyObserver Cluster::MakeLatencyObserver() {
  return [this](uint64_t tenant_id, SimTime now, double latency_ms) {
    const Result<uint64_t> host = directory_.Lookup(tenant_id);
    if (!host.ok()) return;
    server(*host)->monitor()->Record(now, latency_ms);
  };
}

void Cluster::AttachClientPool(uint64_t tenant_id,
                               workload::ClientPool* pool) {
  pools_by_tenant_[tenant_id].push_back(pool);
}

engine::TenantDb* Cluster::TenantOn(uint64_t server_id, uint64_t tenant_id) {
  Server* host = server(server_id);
  return host == nullptr ? nullptr : host->tenants()->Get(tenant_id);
}

Result<engine::TenantDb*> Cluster::CreateTenantOn(
    uint64_t server_id, const engine::TenantConfig& config, bool load,
    bool frozen) {
  Server* host = server(server_id);
  if (host == nullptr) return Status::NotFound("no such server");
  return host->tenants()->CreateTenant(config, load, frozen);
}

Status Cluster::DeleteTenantOn(uint64_t server_id, uint64_t tenant_id) {
  Server* host = server(server_id);
  if (host == nullptr) return Status::NotFound("no such server");
  return host->tenants()->DeleteTenant(tenant_id);
}

net::Channel* Cluster::ChannelBetween(uint64_t from, uint64_t to) {
  const auto key = std::make_pair(from, to);
  auto it = channels_.find(key);
  if (it != channels_.end()) return it->second.get();

  auto link = std::make_unique<resource::NetworkLink>(sim_, options_.link);
  auto channel = std::make_unique<net::Channel>(sim_, link.get());
  channel->OnMessage([this, from, to](const net::Message& message) {
    Server* receiver = server(to);
    if (receiver != nullptr) {
      receiver->controller()->HandleMessage(from, message);
    }
  });
  channel->OnError([](const Status& status) {
    SLACKER_LOG_ERROR << "channel error: " << status.ToString();
  });
  net::Channel* raw = channel.get();
  links_[key] = std::move(link);
  channels_[key] = std::move(channel);
  return raw;
}

void Cluster::SendMessage(uint64_t from_server, uint64_t to_server,
                          const net::Message& message) {
  ChannelBetween(from_server, to_server)->Send(message);
}

control::LatencyMonitor* Cluster::MonitorOn(uint64_t server_id) {
  Server* host = server(server_id);
  return host == nullptr ? nullptr : host->monitor();
}

}  // namespace slacker
