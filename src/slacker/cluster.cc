#include "src/slacker/cluster.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/engine/checkpoint.h"
#include "src/obs/events.h"
#include "src/wal/recovery.h"

namespace slacker {
namespace {

/// Disk stream for crash-recovery reads and checkpoint writes —
/// sequential bulk I/O distinct from tenant traffic and migration
/// streams.
constexpr uint64_t kRecoveryStreamId = UINT64_MAX - 3;

}  // namespace

Server::Server(sim::Simulator* sim, uint64_t id, const ClusterOptions& options,
               MigrationContext* ctx)
    : id_(id),
      disk_(sim, options.disk, "disk-" + std::to_string(id)),
      cpu_(sim, options.cpu),
      shared_pool_(options.multitenancy == MultitenancyModel::kSharedProcess
                       ? std::make_unique<storage::BufferPool>(
                             storage::BufferPoolOptions{
                                 options.shared_buffer_bytes / (16 * kKiB)})
                       : nullptr),
      tenants_(sim, &disk_, &cpu_, shared_pool_.get()),
      monitor_(options.monitor_window),
      controller_(std::make_unique<MigrationController>(ctx, id)),
      software_version_(options.software_version) {
  controller_->set_incoming_options(options.incoming_migration);
}

void Server::Shutdown() {
  up_ = false;
  controller_.reset();
}

void Server::Reboot(MigrationContext* ctx, const MigrationOptions& incoming) {
  controller_ = std::make_unique<MigrationController>(ctx, id_);
  controller_->set_incoming_options(incoming);
  up_ = true;
}

Cluster::Cluster(sim::Simulator* sim, const ClusterOptions& options)
    : sim_(sim), options_(options) {
  servers_.reserve(options.num_servers);
  for (int i = 0; i < options.num_servers; ++i) {
    servers_.push_back(
        std::make_unique<Server>(sim, static_cast<uint64_t>(i), options, this));
  }
  // Wire each server's monitor to probe outstanding client work for the
  // tenants it currently hosts, so a stalled server still reports
  // rising latency to the controller.
  for (auto& server : servers_) {
    Server* raw = server.get();
    raw->monitor()->SetOutstandingProbe([this, raw](SimTime now) {
      double worst = 0.0;
      for (uint64_t tenant : directory_.TenantsOn(raw->id())) {
        auto it = pools_by_tenant_.find(tenant);
        if (it == pools_by_tenant_.end()) continue;
        for (workload::ClientPool* pool : it->second) {
          worst = std::max(worst, pool->OldestOutstandingAgeMs(now));
        }
      }
      return worst;
    });
  }
}

Cluster::~Cluster() = default;

void Cluster::InstallTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) {
    txn_latency_hist_ = nullptr;
    sla_violations_counter_ = nullptr;
    for (auto& server : servers_) {
      server->disk()->AttachObs(nullptr);
      for (uint64_t tenant_id : server->tenants()->TenantIds()) {
        engine::TenantDb* db = server->tenants()->Get(tenant_id);
        if (db != nullptr) db->AttachObs(nullptr, nullptr);
      }
    }
    return;
  }
  obs::MetricRegistry* registry = tracer_->registry();
  txn_latency_hist_ = registry->FindOrCreateHistogram("txn_latency_ms");
  sla_violations_counter_ = registry->FindOrCreateCounter("sla_violations");
  for (auto& server : servers_) {
    const std::string labels = "server=" + std::to_string(server->id());
    server->disk()->AttachObs(
        registry->FindOrCreateGauge("disk_queue_depth", labels));
    for (uint64_t tenant_id : server->tenants()->TenantIds()) {
      AttachTenantObs(server->tenants()->Get(tenant_id));
    }
  }
}

void Cluster::AttachTenantObs(engine::TenantDb* db) {
  if (tracer_ == nullptr || db == nullptr) return;
  const std::string labels =
      "tenant=" + std::to_string(db->config().tenant_id);
  db->AttachObs(
      tracer_->registry()->FindOrCreateHistogram("op_latency_ms", labels),
      tracer_->registry()->FindOrCreateCounter("ops_executed", labels));
}

Server* Cluster::server(uint64_t id) {
  return id < servers_.size() ? servers_[id].get() : nullptr;
}

Result<engine::TenantDb*> Cluster::AddTenant(
    uint64_t server_id, const engine::TenantConfig& config, bool load) {
  Server* host = server(server_id);
  if (host == nullptr) return Status::NotFound("no such server");
  if (host->draining()) {
    return Status::FailedPrecondition("server " + std::to_string(server_id) +
                                      " is draining");
  }
  Result<engine::TenantDb*> db =
      host->tenants()->CreateTenant(config, load, /*frozen=*/false);
  if (!db.ok()) return db;
  auditor_.OnTenantPlaced(server_id, config.tenant_id, host->draining());
  AttachTenantObs(*db);
  SLACKER_RETURN_IF_ERROR(directory_.Register(config.tenant_id, server_id));
  SLACKER_RETURN_IF_ERROR(ranges_.RegisterTenant(config.tenant_id, server_id));
  auditor_.OnRangeCoverage(config.tenant_id,
                           ranges_.ValidateCoverage(config.tenant_id));
  return db;
}

Status Cluster::RemoveTenant(uint64_t tenant_id) {
  Result<uint64_t> host = directory_.Lookup(tenant_id);
  SLACKER_RETURN_IF_ERROR(host.status());
  SLACKER_RETURN_IF_ERROR(directory_.Remove(tenant_id));
  // A sharded tenant may hold instances on several servers; drop all.
  std::vector<uint64_t> owners = ranges_.ServersOf(tenant_id);
  (void)ranges_.RemoveTenant(tenant_id);
  Status result = Status::Ok();
  bool deleted_on_host = false;
  for (uint64_t owner : owners) {
    if (owner == *host) deleted_on_host = true;
    const Status deleted = DeleteTenantOn(owner, tenant_id);
    if (!deleted.ok() && result.ok()) result = deleted;
  }
  if (!deleted_on_host) {
    const Status deleted = DeleteTenantOn(*host, tenant_id);
    if (!deleted.ok() && result.ok()) result = deleted;
  }
  return result;
}

Status Cluster::StartMigration(uint64_t tenant_id, uint64_t target_server,
                               const MigrationOptions& options,
                               MigrationJob::DoneCallback done) {
  Result<uint64_t> host = directory_.Lookup(tenant_id);
  SLACKER_RETURN_IF_ERROR(host.status());
  if (server(target_server) == nullptr) {
    return Status::NotFound("no such target server");
  }
  if (!server(*host)->up()) {
    return Status::Unavailable("source server is down");
  }
  if (!server(target_server)->up()) {
    return Status::Unavailable("target server is down");
  }
  if (server(target_server)->draining()) {
    return Status::FailedPrecondition("target server is draining");
  }
  return server(*host)->controller()->StartMigration(tenant_id, target_server,
                                                     options, std::move(done));
}

Status Cluster::StartRangeMigration(uint64_t tenant_id,
                                    const range::KeyRange& key_range,
                                    uint64_t target_server,
                                    const MigrationOptions& options,
                                    MigrationJob::DoneCallback done) {
  Result<range::OwnedRange> owned =
      ranges_.RangeContaining(tenant_id, key_range.lo);
  SLACKER_RETURN_IF_ERROR(owned.status());
  if (!(owned->range == key_range)) {
    return Status::InvalidArgument(
        "range is not a registered unit (SplitTenantRange first): " +
        key_range.ToString() + " vs " + owned->range.ToString());
  }
  const uint64_t source = owned->server;
  if (server(target_server) == nullptr) {
    return Status::NotFound("no such target server");
  }
  if (!server(source)->up()) {
    return Status::Unavailable("source server is down");
  }
  if (!server(target_server)->up()) {
    return Status::Unavailable("target server is down");
  }
  if (server(target_server)->draining()) {
    return Status::FailedPrecondition("target server is draining");
  }
  MigrationOptions range_options = options;
  range_options.range_scoped = true;
  range_options.range = key_range;
  return server(source)->controller()->StartMigration(
      tenant_id, target_server, range_options, std::move(done));
}

Status Cluster::SplitTenantRange(uint64_t tenant_id, uint64_t split_key) {
  SLACKER_RETURN_IF_ERROR(ranges_.Split(tenant_id, split_key));
  auditor_.OnRangeCoverage(tenant_id, ranges_.ValidateCoverage(tenant_id));
  return Status::Ok();
}

Status Cluster::MergeTenantRange(uint64_t tenant_id, uint64_t key) {
  SLACKER_RETURN_IF_ERROR(ranges_.MergeAt(tenant_id, key));
  auditor_.OnRangeCoverage(tenant_id, ranges_.ValidateCoverage(tenant_id));
  return Status::Ok();
}

MigrationJob* Cluster::ActiveJob(uint64_t tenant_id) {
  const Result<uint64_t> host = directory_.Lookup(tenant_id);
  if (!host.ok()) return nullptr;
  Server* source = server(*host);
  if (source == nullptr || source->controller() == nullptr) return nullptr;
  return source->controller()->ActiveJob(tenant_id);
}

Status Cluster::CancelMigration(uint64_t tenant_id,
                                const std::string& reason) {
  const Result<uint64_t> host = directory_.Lookup(tenant_id);
  SLACKER_RETURN_IF_ERROR(host.status());
  if (server(*host)->controller() == nullptr) {
    return Status::Unavailable("source server is down");
  }
  return server(*host)->controller()->CancelMigration(tenant_id, reason);
}

engine::TenantDb* Cluster::Resolve(uint64_t tenant_id) {
  const Result<uint64_t> host = directory_.Lookup(tenant_id);
  if (!host.ok()) return nullptr;
  return server(*host)->tenants()->Get(tenant_id);
}

engine::TenantDb* Cluster::ResolveForKey(uint64_t tenant_id, uint64_t key) {
  if (!ranges_.IsSharded(tenant_id)) return Resolve(tenant_id);
  const Result<uint64_t> owner = ranges_.OwnerOf(tenant_id, key);
  if (!owner.ok()) return nullptr;
  auditor_.OnOpRouted(tenant_id, key, *owner, *owner);
  Server* host = server(*owner);
  if (host == nullptr || !host->up()) return nullptr;
  return host->tenants()->Get(tenant_id);
}

workload::ClientPool::LatencyObserver Cluster::MakeLatencyObserver() {
  return [this](uint64_t tenant_id, SimTime now, double latency_ms) {
    const Result<uint64_t> host = directory_.Lookup(tenant_id);
    if (!host.ok()) return;
    server(*host)->monitor()->Record(now, latency_ms);
    if (tracer_ != nullptr) {
      if (txn_latency_hist_ != nullptr) txn_latency_hist_->Observe(latency_ms);
      if (sla_threshold_ms_ > 0.0 && latency_ms > sla_threshold_ms_) {
        if (sla_violations_counter_ != nullptr) sla_violations_counter_->Add();
        obs::SlaViolation violation;
        violation.tenant_id = tenant_id;
        violation.latency_ms = latency_ms;
        violation.threshold_ms = sla_threshold_ms_;
        obs::EmitSlaViolation(tracer_, violation);
      }
    }
  };
}

void Cluster::AttachClientPool(uint64_t tenant_id,
                               workload::ClientPool* pool) {
  pools_by_tenant_[tenant_id].push_back(pool);
}

engine::TenantDb* Cluster::TenantOn(uint64_t server_id, uint64_t tenant_id) {
  Server* host = server(server_id);
  return host == nullptr ? nullptr : host->tenants()->Get(tenant_id);
}

std::vector<uint64_t> Cluster::SampledTenantsOn(uint64_t server_id) {
  return directory_.TenantsOn(server_id);
}

bool Cluster::TenantOpsExecuted(uint64_t server_id, uint64_t tenant_id,
                                uint64_t* ops) {
  const engine::TenantDb* db = TenantOn(server_id, tenant_id);
  if (db == nullptr) return false;
  *ops = db->ops_executed();
  return true;
}

Result<engine::TenantDb*> Cluster::CreateTenantOn(
    uint64_t server_id, const engine::TenantConfig& config, bool load,
    bool frozen) {
  Server* host = server(server_id);
  if (host == nullptr) return Status::NotFound("no such server");
  if (host->draining()) {
    // Migration staging counts as gaining a tenant: an incoming
    // migration targeting a draining server is refused here, which the
    // TargetSession turns into a clean kMigrateAbort back to the
    // source (the supervisor then retries elsewhere).
    return Status::FailedPrecondition("server " + std::to_string(server_id) +
                                      " is draining");
  }
  Result<engine::TenantDb*> db =
      host->tenants()->CreateTenant(config, load, frozen);
  if (db.ok()) {
    auditor_.OnTenantPlaced(server_id, config.tenant_id, host->draining());
    AttachTenantObs(*db);
  }
  return db;
}

Status Cluster::DeleteTenantOn(uint64_t server_id, uint64_t tenant_id) {
  Server* host = server(server_id);
  if (host == nullptr) return Status::NotFound("no such server");
  // A deliberate delete removes the data directory: nothing of this
  // instance is recoverable afterwards. Only the separately staged
  // migration chunks (kept for resume) may outlive it.
  host->durable()->EraseCheckpoint(tenant_id);
  host->durable()->EraseCrashState(tenant_id);
  return host->tenants()->DeleteTenant(tenant_id);
}

void Cluster::CrashServer(uint64_t server_id) {
  Server* host = server(server_id);
  if (host == nullptr || !host->up()) return;
  SLACKER_LOG_WARN << "server " << server_id << " crashed";
  if (tracer_ != nullptr) {
    obs::FaultFired fault;
    fault.kind = "crash";
    fault.server_id = server_id;
    obs::EmitFaultFired(tracer_, fault);
  }
  DurableStore* durable = host->durable();
  for (uint64_t tenant_id : host->tenants()->TenantIds()) {
    engine::TenantDb* db = host->tenants()->Get(tenant_id);
    const Result<uint64_t> authority = directory_.Lookup(tenant_id);
    if (authority.ok() && *authority == server_id) {
      // The binlog is the WAL — it was written synchronously to disk
      // and survives. The in-memory table does not.
      DurableTenantState state;
      state.config = db->config();
      state.log = *db->binlog();
      durable->SaveCrashState(tenant_id, std::move(state));
    } else {
      // Staging instance (or stale residue): its half-built table dies
      // with the process. Durably staged chunks remain for resume.
      durable->EraseCrashState(tenant_id);
    }
    db->FailInFlight(Status::Unavailable("server crashed"));
    (void)host->tenants()->DeleteTenant(tenant_id);
  }
  host->Shutdown();
}

void Cluster::RestartServer(uint64_t server_id, SimTime delay) {
  sim_->After(delay, [this, server_id] { RecoverServer(server_id); });
}

void Cluster::RecoverServer(uint64_t server_id) {
  Server* host = server(server_id);
  if (host == nullptr || host->up()) return;
  host->Reboot(this, options_.incoming_migration);
  SLACKER_LOG_INFO << "server " << server_id << " restarted";
  if (tracer_ != nullptr) {
    obs::FaultFired fault;
    fault.kind = "restart";
    fault.server_id = server_id;
    obs::EmitFaultFired(tracer_, fault);
  }
  DurableStore* durable = host->durable();
  for (uint64_t tenant_id : durable->CrashedTenants()) {
    const DurableTenantState* state = durable->CrashState(tenant_id);
    const Result<uint64_t> authority = directory_.Lookup(tenant_id);
    if (!authority.ok() || *authority != server_id) {
      // Ownership moved while this server was down.
      durable->EraseCrashState(tenant_id);
      continue;
    }
    Result<engine::TenantDb*> created = host->tenants()->CreateTenant(
        state->config, /*load=*/false, /*frozen=*/true);
    if (!created.ok()) {
      SLACKER_LOG_ERROR << "tenant " << tenant_id
                        << " failed to reinstantiate after restart: "
                        << created.status().ToString();
      continue;
    }
    engine::TenantDb* db = *created;
    uint64_t recovery_bytes = 0;
    bool recovered = false;
    const engine::CheckpointImage* image = durable->Checkpoint(tenant_id);
    if (image != nullptr) {
      const Result<storage::Lsn> lsn =
          engine::RecoverFromCheckpoint(*image, state->log, db);
      if (lsn.ok()) {
        recovered = true;
        recovery_bytes =
            image->LogicalBytes(state->config.layout.record_bytes);
        if (state->log.last_lsn() > image->lsn) {
          recovery_bytes +=
              state->log.BytesInRange(image->lsn + 1, state->log.last_lsn());
        }
      } else {
        SLACKER_LOG_WARN << "tenant " << tenant_id
                         << " checkpoint unusable ("
                         << lsn.status().ToString()
                         << "); falling back to full replay";
      }
    }
    if (!recovered) {
      if (state->log.first_lsn() > 1) {
        // The log was purged past the initial load and no checkpoint
        // bridges the gap: the prefix is unrecoverable. Never serve a
        // divergent table — declare the data lost.
        SLACKER_LOG_ERROR << "tenant " << tenant_id
                          << " unrecoverable after crash (binlog purged, "
                             "no valid checkpoint); dropping";
        (void)host->tenants()->DeleteTenant(tenant_id);
        durable->EraseCrashState(tenant_id);
        (void)directory_.Remove(tenant_id);
        (void)ranges_.RemoveTenant(tenant_id);
        continue;
      }
      // Implicit LSN-0 checkpoint: the initial Load() image plus a full
      // log replay.
      db->Load();
      (void)wal::ReplayBinlog(state->log, 1, db->mutable_table());
      // The implicit checkpoint is the initial load image: recovery
      // re-reads the whole base table plus the full log.
      recovery_bytes =
          state->config.layout.DataBytes() + state->log.total_bytes();
    }
    db->RestoreBinlog(state->log);
    durable->EraseCrashState(tenant_id);
    // Recovery reads the checkpoint + log suffix off disk; the tenant
    // stays frozen (queueing queries) until the scan completes.
    db->ChargeSequentialRead(std::max<uint64_t>(recovery_bytes, 1),
                             kRecoveryStreamId, [db] { db->Unfreeze(); });
  }
}

std::vector<uint64_t> Cluster::UpServerIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(servers_.size());
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i]->up()) ids.push_back(i);
  }
  return ids;
}

bool Cluster::ServerUp(uint64_t server_id) const {
  return server_id < servers_.size() && servers_[server_id]->up();
}

Status Cluster::SetDraining(uint64_t server_id, bool draining) {
  Server* host = server(server_id);
  if (host == nullptr) return Status::NotFound("no such server");
  if (host->draining() == draining) return Status::Ok();
  host->set_draining(draining);
  SLACKER_LOG_INFO << "server " << server_id
                   << (draining ? " draining" : " undrained");
  if (tracer_ != nullptr) {
    obs::ServerDrain drain;
    drain.server_id = server_id;
    drain.draining = draining;
    drain.tenants_remaining = host->tenants()->tenant_count();
    obs::EmitServerDrain(tracer_, drain);
  }
  return Status::Ok();
}

bool Cluster::ServerDraining(uint64_t server_id) const {
  return server_id < servers_.size() && servers_[server_id]->draining();
}

std::vector<uint64_t> Cluster::DrainingServerIds() const {
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i]->up() && servers_[i]->draining()) ids.push_back(i);
  }
  return ids;
}

uint32_t Cluster::ServerVersion(uint64_t server_id) const {
  return server_id < servers_.size()
             ? servers_[server_id]->software_version()
             : 0;
}

Status Cluster::SetServerVersion(uint64_t server_id, uint32_t version) {
  Server* host = server(server_id);
  if (host == nullptr) return Status::NotFound("no such server");
  const uint32_t from = host->software_version();
  if (from == version) return Status::Ok();
  auditor_.OnServerVersionChange(server_id, from, version);
  host->set_software_version(version);
  SLACKER_LOG_INFO << "server " << server_id << " patched: version " << from
                   << " -> " << version;
  if (tracer_ != nullptr) {
    obs::ServerVersionChange change;
    change.server_id = server_id;
    change.from_version = from;
    change.to_version = version;
    obs::EmitServerVersionChange(tracer_, change);
  }
  return Status::Ok();
}

void Cluster::SetPartitioned(uint64_t a, uint64_t b, bool partitioned) {
  const auto key = std::make_pair(std::min(a, b), std::max(a, b));
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
  if (tracer_ != nullptr) {
    obs::FaultFired fault;
    fault.kind = partitioned ? "partition" : "heal";
    fault.server_id = key.first;
    fault.has_peer = true;
    fault.peer = key.second;
    obs::EmitFaultFired(tracer_, fault);
  }
}

bool Cluster::IsPartitioned(uint64_t a, uint64_t b) const {
  return partitions_.count(std::make_pair(std::min(a, b), std::max(a, b))) > 0;
}

Status Cluster::CheckpointTenant(uint64_t tenant_id) {
  const Result<uint64_t> host_id = directory_.Lookup(tenant_id);
  SLACKER_RETURN_IF_ERROR(host_id.status());
  Server* host = server(*host_id);
  if (host == nullptr || !host->up()) {
    return Status::Unavailable("host server is down");
  }
  engine::TenantDb* db = host->tenants()->Get(tenant_id);
  if (db == nullptr) {
    return Status::NotFound("tenant not instantiated on its host");
  }
  engine::CheckpointImage image = engine::TakeCheckpoint(*db);
  const uint64_t bytes =
      std::max<uint64_t>(image.LogicalBytes(db->config().layout.record_bytes),
                         1);
  host->durable()->SaveCheckpoint(std::move(image));
  // The checkpoint write competes with query traffic for the disk.
  db->ChargeSequentialWrite(bytes, kRecoveryStreamId, nullptr);
  return Status::Ok();
}

net::Channel* Cluster::ChannelBetween(uint64_t from, uint64_t to) {
  const auto key = std::make_pair(from, to);
  auto it = channels_.find(key);
  if (it != channels_.end()) return it->second.get();

  auto link = std::make_unique<resource::NetworkLink>(sim_, options_.link);
  auto channel = std::make_unique<net::Channel>(sim_, link.get());
  channel->OnMessage([this, from, to](const net::Message& message) {
    Server* receiver = server(to);
    // A crashed receiver or a cut link silently eats the message, just
    // like a real network.
    if (receiver == nullptr || !receiver->up() ||
        receiver->controller() == nullptr || IsPartitioned(from, to)) {
      if (message.type == net::MessageType::kSnapshotChunk) {
        auditor_.OnChunkDropped(message.tenant_id, message.payload_bytes,
                                message.wire_payload_bytes());
      }
      return;
    }
    receiver->controller()->HandleMessage(from, message);
  });
  channel->OnError([](const Status& status) {
    SLACKER_LOG_ERROR << "channel error: " << status.ToString();
  });
  channel->OnDrop([this](const net::Channel::DropInfo& info) {
    // Chunks lost to injected faults (filtered datagrams, bit rot that
    // fails the frame decode) count against the conservation ledger.
    if (info.type == net::MessageType::kSnapshotChunk) {
      auditor_.OnChunkDropped(info.tenant_id, info.payload_bytes,
                              info.wire_payload_bytes);
    }
  });
  net::Channel* raw = channel.get();
  links_[key] = std::move(link);
  channels_[key] = std::move(channel);
  return raw;
}

void Cluster::SendMessage(uint64_t from_server, uint64_t to_server,
                          const net::Message& message) {
  auditor_.OnClockSample(sim_->Now());
  Server* sender = server(from_server);
  if (sender == nullptr || !sender->up()) {
    if (message.type == net::MessageType::kSnapshotChunk) {
      auditor_.OnChunkDropped(message.tenant_id, message.payload_bytes,
                              message.wire_payload_bytes());
    }
    return;
  }
  ChannelBetween(from_server, to_server)->Send(message);
}

control::LatencyMonitor* Cluster::MonitorOn(uint64_t server_id) {
  Server* host = server(server_id);
  return host == nullptr ? nullptr : host->monitor();
}

DurableStore* Cluster::DurableStoreOn(uint64_t server_id) {
  Server* host = server(server_id);
  return host == nullptr ? nullptr : host->durable();
}

resource::CpuModel* Cluster::CpuOn(uint64_t server_id) {
  Server* host = server(server_id);
  return host == nullptr ? nullptr : host->cpu();
}

uint32_t Cluster::SoftwareVersionOn(uint64_t server_id) {
  return ServerVersion(server_id);
}

}  // namespace slacker
