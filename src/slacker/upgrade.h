#ifndef SLACKER_SLACKER_UPGRADE_H_
#define SLACKER_SLACKER_UPGRADE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/simulator.h"
#include "src/slacker/cluster.h"
#include "src/slacker/rebalancer.h"

namespace slacker {

/// Policy knobs for a rolling fleet upgrade (DESIGN.md §12).
struct UpgradeOptions {
  /// Version every server should end up on. Must be greater than the
  /// version of every server in the fleet at Start().
  uint32_t target_version = 0;

  /// Servers patched per wave (after the canary wave, if any).
  int wave_size = 4;
  /// Upgrade a single canary server first, so a bad build trips the
  /// health gate while only one server runs it.
  bool canary = true;

  /// Server downtime while the binary is swapped (crash → patch →
  /// restart).
  SimTime patch_seconds = 5.0;
  /// Orchestrator poll period: health sampling, drain-progress checks,
  /// and a rebalancer kick while a wave is draining.
  SimTime poll_period = 1.0;
  /// A wave whose drain has not finished after this long trips the
  /// gate (evacuations are stuck: no capacity, or a partitioned pair).
  SimTime drain_timeout = 600.0;
  /// Post-patch observation window before the wave is declared healthy
  /// (the canary soak).
  SimTime observe_seconds = 10.0;

  /// A server whose window-average latency exceeds this (ms) counts as
  /// violating for that poll interval; 0 disables the latency term
  /// (down-while-hosting-tenants still counts).
  double sla_ms = 0.0;
  /// Health gate: per-wave SLA-violation budget, in server-seconds.
  double max_violation_seconds = 30.0;
  /// Health gate: per-wave failed-migration budget (from the
  /// rebalancer's counters).
  uint64_t max_failed_migrations = 3;

  /// Optional trough scheduler (DESIGN.md §13). When set, each forward
  /// wave's drain is offered to the scheduler before any server is
  /// marked draining: the wave waits (kWaitingTrough) until its
  /// predicted trough or its fallback deadline. Rollback waves never
  /// wait — restoring the fleet is urgent.
  forecast::TroughScheduler* trough_scheduler = nullptr;

  Status Validate() const;
};

/// Per-wave outcome folded into the final report.
struct UpgradeWaveReport {
  int wave = 0;
  std::vector<uint64_t> servers;
  SimTime drain_seconds = 0.0;
  SimTime patch_seconds = 0.0;
  double violation_seconds = 0.0;
  uint64_t failed_migrations = 0;
  bool gate_tripped = false;
  std::string gate_reason;
};

/// The structured report Start()'s done callback receives.
struct UpgradeReport {
  /// Ok: fleet fully upgraded. Aborted: gate tripped or operator
  /// abort; `rolled_back` says the patched servers were restored.
  Status status;
  bool rolled_back = false;
  int waves_completed = 0;
  std::vector<UpgradeWaveReport> waves;
  /// server id -> version after the run settled.
  std::map<uint64_t, uint32_t> final_versions;
  double total_violation_seconds = 0.0;
  SimTime start_time = 0.0;
  SimTime end_time = 0.0;

  double DurationSeconds() const { return end_time - start_time; }
};

/// Health-sampling helper shared with the fig16 bench's all-at-once
/// baseline: number of servers currently violating — down while still
/// authoritative for at least one tenant, or (sla_ms > 0) running with
/// window-average latency above sla_ms.
int CountViolatingServers(Cluster* cluster, double sla_ms, SimTime now);

/// Upgrades a fleet in waves without ever leaving the latency guard
/// band: each wave is drained (the rebalancer evacuates its tenants as
/// non-urgent work admitted only inside the guard band), patched
/// (crash → SetServerVersion → restart), refilled (undrained, so the
/// rebalancer may place tenants back), and observed. A per-wave health
/// gate — SLA-violation server-seconds and failed-migration budgets —
/// trips into abort-and-rollback: in-flight evacuations are quenched
/// (a handover already in flight is allowed to land), every drained
/// server is undrained, and the servers already patched are rolled
/// back to their original version through the same wave machinery.
class RollingUpgradeOrchestrator {
 public:
  using DoneCallback = std::function<void(const UpgradeReport&)>;

  RollingUpgradeOrchestrator(Cluster* cluster, Rebalancer* rebalancer,
                             UpgradeOptions options);
  ~RollingUpgradeOrchestrator();

  RollingUpgradeOrchestrator(const RollingUpgradeOrchestrator&) = delete;
  RollingUpgradeOrchestrator& operator=(const RollingUpgradeOrchestrator&) =
      delete;

  /// Validates options, snapshots the fleet's versions, carves the up
  /// servers into waves (canary first), and begins draining wave 0.
  Status Start(DoneCallback done);

  /// Operator abort: same path as a gate trip — quench evacuations,
  /// undrain, roll back patched servers, report kAborted.
  void Abort(const std::string& reason);

  bool running() const { return running_; }
  bool rolling_back() const { return rolling_back_; }
  const UpgradeReport& report() const { return report_; }

 private:
  enum class Phase { kIdle, kWaitingTrough, kDraining, kPatching, kObserving };

  void Poll(SimTime now);
  void BeginWave(size_t index, SimTime now);
  /// Offers the wave's drain to the trough scheduler; true to drain
  /// now, false to hold (phase becomes kWaitingTrough).
  bool WaveMayDrain(SimTime now);
  /// Marks the wave draining and kicks evacuation planning.
  void BeginDrain(SimTime now);
  void BeginRollback(SimTime now);
  /// Gate trip / operator abort entry point.
  void TripGate(const std::string& reason, SimTime now);
  void Finish(Status status, SimTime now);
  /// Every server of the current wave is up, empty, and idle.
  bool WaveDrained() const;
  /// The version the current wave's servers should be patched to.
  uint32_t PatchVersionFor(uint64_t server_id) const;
  void EmitWave(const char* action, const std::string& detail, SimTime now);
  UpgradeWaveReport& wave_report();

  Cluster* cluster_;
  Rebalancer* rebalancer_;
  sim::Simulator* sim_;
  UpgradeOptions options_;
  DoneCallback done_;
  std::unique_ptr<sim::PeriodicTimer> timer_;

  /// Waves still to run (forward upgrade, then reused for rollback).
  std::vector<std::vector<uint64_t>> waves_;
  size_t wave_index_ = 0;
  Phase phase_ = Phase::kIdle;
  bool running_ = false;
  bool rolling_back_ = false;

  /// server id -> version at Start(), the rollback restore point.
  std::map<uint64_t, uint32_t> original_versions_;
  SimTime wave_start_ = 0.0;
  SimTime drain_start_ = 0.0;
  SimTime patch_start_ = 0.0;
  SimTime observe_start_ = 0.0;
  /// Rebalancer failed-migration counter at wave start.
  uint64_t failed_baseline_ = 0;

  UpgradeReport report_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace slacker

#endif  // SLACKER_SLACKER_UPGRADE_H_
