#include "src/slacker/tenant_directory.h"

#include <utility>

namespace slacker {

Status TenantDirectory::Register(uint64_t tenant_id, uint64_t server_id) {
  auto [it, inserted] = map_.emplace(tenant_id, server_id);
  if (!inserted) {
    return Status::AlreadyExists("tenant " + std::to_string(tenant_id) +
                                 " already registered");
  }
  Notify(tenant_id, server_id, server_id);
  return Status::Ok();
}

Result<uint64_t> TenantDirectory::Lookup(uint64_t tenant_id) const {
  auto it = map_.find(tenant_id);
  if (it == map_.end()) {
    return Status::NotFound("tenant " + std::to_string(tenant_id) +
                            " not in directory");
  }
  return it->second;
}

Status TenantDirectory::Update(uint64_t tenant_id, uint64_t new_server) {
  auto it = map_.find(tenant_id);
  if (it == map_.end()) {
    return Status::NotFound("tenant " + std::to_string(tenant_id) +
                            " not in directory");
  }
  const uint64_t old_server = it->second;
  it->second = new_server;
  ++updates_;
  Notify(tenant_id, old_server, new_server);
  return Status::Ok();
}

Status TenantDirectory::Remove(uint64_t tenant_id) {
  if (map_.erase(tenant_id) == 0) {
    return Status::NotFound("tenant " + std::to_string(tenant_id) +
                            " not in directory");
  }
  return Status::Ok();
}

std::vector<uint64_t> TenantDirectory::TenantsOn(uint64_t server_id) const {
  std::vector<uint64_t> out;
  for (const auto& [tenant, server] : map_) {
    if (server == server_id) out.push_back(tenant);
  }
  return out;
}

int TenantDirectory::AddListener(Listener listener) {
  const int token = next_token_++;
  listeners_[token] = std::move(listener);
  return token;
}

void TenantDirectory::RemoveListener(int token) { listeners_.erase(token); }

void TenantDirectory::Notify(uint64_t tenant, uint64_t old_server,
                             uint64_t new_server) {
  for (const auto& [token, listener] : listeners_) {
    if (listener) listener(tenant, old_server, new_server);
  }
}

}  // namespace slacker
