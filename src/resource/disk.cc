#include "src/resource/disk.h"

#include <utility>

namespace slacker::resource {

DiskModel::DiskModel(sim::Simulator* sim, DiskOptions options,
                     std::string name)
    : sim_(sim), options_(options), name_(std::move(name)) {}

SimTime DiskModel::ServiceTime(IoKind kind, uint64_t bytes,
                               uint64_t stream_id) const {
  const SimTime transfer =
      static_cast<double>(bytes) / options_.transfer_bytes_per_sec;
  if (!IsSequential(kind)) return options_.seek_time + transfer;
  // A sequential request continues without a seek only if the head is
  // still where this stream left it.
  const bool head_in_place = last_was_sequential_ && last_stream_ == stream_id;
  return (head_in_place ? 0.0 : options_.seek_time) + transfer;
}

void DiskModel::Submit(IoKind kind, uint64_t bytes, std::function<void()> done,
                       uint64_t stream_id) {
  queue_.push_back(Request{kind, bytes, stream_id, sim_->Now(),
                           std::move(done)});
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<double>(QueueDepth()));
  }
  if (!busy_) StartNext();
}

void DiskModel::StartNext() {
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<double>(QueueDepth()));
  }
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request request = std::move(queue_.front());
  queue_.pop_front();

  const SimTime service = ServiceTime(request.kind, request.bytes,
                                      request.stream_id);
  last_stream_ = request.stream_id;
  last_was_sequential_ = IsSequential(request.kind);

  busy_time_ += service;
  ++total_requests_;
  if (IsRead(request.kind)) {
    bytes_read_ += request.bytes;
  } else {
    bytes_written_ += request.bytes;
  }
  wait_stats_.Add(sim_->Now() - request.submitted);

  sim_->After(service, [this, done = std::move(request.done)]() mutable {
    if (done) done();
    StartNext();
  });
}

double DiskModel::Utilization() const {
  const SimTime elapsed = sim_->Now() - stats_epoch_;
  if (elapsed <= 0.0) return 0.0;
  double util = busy_time_ / elapsed;
  return util > 1.0 ? 1.0 : util;
}

void DiskModel::ResetStats() {
  busy_time_ = 0.0;
  stats_epoch_ = sim_->Now();
  total_requests_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
  wait_stats_.Reset();
}

}  // namespace slacker::resource
