#ifndef SLACKER_RESOURCE_TOKEN_BUCKET_H_
#define SLACKER_RESOURCE_TOKEN_BUCKET_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace slacker::resource {

struct TokenBucketOptions {
  /// Initial fill rate, bytes/sec. 0 means paused.
  double rate_bytes_per_sec = 0.0;
  /// Maximum accumulated tokens (burst), bytes. Small relative to the
  /// chunk size so an idle pipe cannot dump a large burst on the disk
  /// the instant it resumes — `pv` behaves the same way.
  uint64_t burst_bytes = 2 * kMiB;
};

/// The `pv` equivalent: an adjustable-rate token bucket gating the
/// migration pipe. Acquire(bytes) completes when the bucket has drained
/// enough tokens; callers (the snapshot streamer) therefore experience
/// back-pressure, which is what throttles the source disk reads.
///
/// SetRate() may be called at any time — including while acquirers wait
/// — and takes effect immediately, mirroring `pv -L` runtime rate
/// changes that Slacker's PID controller issues every second.
class TokenBucket {
 public:
  TokenBucket(sim::Simulator* sim, TokenBucketOptions options);
  /// Cancels the pending refill wakeup: a bucket may die mid-stream
  /// (its owning migration job crashes with the server).
  ~TokenBucket();

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  /// Requests `bytes` of budget; `granted` fires once the bucket can
  /// cover them. Requests are served FIFO. `bytes` may exceed
  /// burst_bytes; such a request drains the bucket across multiple
  /// refill periods.
  void Acquire(uint64_t bytes, std::function<void()> granted);

  /// Changes the fill rate. Rate 0 pauses the pipe (waiters stall until
  /// the rate becomes positive again).
  void SetRate(double bytes_per_sec);
  double rate() const { return rate_; }

  size_t waiters() const { return waiters_.size(); }
  uint64_t bytes_granted() const { return bytes_granted_; }

 private:
  void Refill();
  void PumpWaiters();
  void ScheduleWakeup();

  sim::Simulator* sim_;
  TokenBucketOptions options_;
  double rate_;
  double tokens_;
  SimTime last_refill_ = 0.0;

  struct Waiter {
    // Remaining bytes still to cover for this request.
    double remaining;
    std::function<void()> granted;
  };
  std::deque<Waiter> waiters_;
  sim::EventId wakeup_ = 0;
  uint64_t bytes_granted_ = 0;
};

}  // namespace slacker::resource

#endif  // SLACKER_RESOURCE_TOKEN_BUCKET_H_
