#include "src/resource/token_bucket.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/invariant.h"

namespace slacker::resource {

TokenBucket::TokenBucket(sim::Simulator* sim, TokenBucketOptions options)
    : sim_(sim),
      options_(options),
      rate_(options.rate_bytes_per_sec),
      tokens_(0.0),
      last_refill_(sim->Now()) {}

TokenBucket::~TokenBucket() {
  if (wakeup_ != 0) sim_->Cancel(wakeup_);
}

void TokenBucket::Refill() {
  const SimTime now = sim_->Now();
  const SimTime elapsed = now - last_refill_;
  last_refill_ = now;
  if (elapsed <= 0.0 || rate_ <= 0.0) return;
  tokens_ = std::min(tokens_ + rate_ * elapsed,
                     static_cast<double>(options_.burst_bytes));
}

void TokenBucket::Acquire(uint64_t bytes, std::function<void()> granted) {
  waiters_.push_back(Waiter{static_cast<double>(bytes), std::move(granted)});
  bytes_granted_ += bytes;
  PumpWaiters();
}

void TokenBucket::SetRate(double bytes_per_sec) {
  // A NaN/inf or negative rate is a controller bug upstream (a PID that
  // escaped its clamp); letting it in would stall or runaway the pipe
  // in a way that only surfaces minutes later in a throttle series.
  SLACKER_CHECK(std::isfinite(bytes_per_sec),
                "token bucket rate is not finite");
  SLACKER_CHECK(bytes_per_sec >= 0.0, "token bucket rate is negative");
  Refill();  // Bank tokens accrued at the old rate first.
  rate_ = std::max(bytes_per_sec, 0.0);
  if (wakeup_ != 0) {
    sim_->Cancel(wakeup_);
    wakeup_ = 0;
  }
  PumpWaiters();
}

void TokenBucket::PumpWaiters() {
  Refill();
  // Refill clamps at the burst and every grant subtracts what it takes:
  // the token count must stay within [0, burst].
  SLACKER_DCHECK(tokens_ >= 0.0 &&
                 tokens_ <= static_cast<double>(options_.burst_bytes));
  // Residues below a milli-byte are float noise, not real debt: treat
  // them as satisfied so the wakeup chain cannot degenerate into
  // ever-smaller (eventually sub-ulp, i.e., zero-time) sleeps.
  constexpr double kEpsilonBytes = 1e-3;
  while (!waiters_.empty()) {
    Waiter& front = waiters_.front();
    const double take = std::min(front.remaining, tokens_);
    tokens_ -= take;
    front.remaining -= take;
    if (front.remaining > kEpsilonBytes) break;
    auto granted = std::move(front.granted);
    waiters_.pop_front();
    // Defer the callback through the simulator so a grantee that
    // immediately re-acquires does not recurse into this loop.
    sim_->After(0.0, std::move(granted));
  }
  ScheduleWakeup();
}

void TokenBucket::ScheduleWakeup() {
  if (wakeup_ != 0 || waiters_.empty() || rate_ <= 0.0) return;
  const double deficit = waiters_.front().remaining - tokens_;
  // Cap the accrual horizon at the burst so the wakeup never waits for
  // tokens the bucket cannot hold; oversize requests drain in rounds.
  const double accruable =
      std::min(deficit, static_cast<double>(options_.burst_bytes));
  // Floor the sleep at 1 µs: a shorter delay can round to *no* clock
  // advance in double precision, which would re-run this wakeup at the
  // same instant forever.
  const SimTime delay = std::max(accruable / rate_, 1e-6);
  wakeup_ = sim_->After(delay, [this] {
    wakeup_ = 0;
    PumpWaiters();
  });
}

}  // namespace slacker::resource
