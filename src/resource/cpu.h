#ifndef SLACKER_RESOURCE_CPU_H_
#define SLACKER_RESOURCE_CPU_H_

#include <cstddef>
#include <deque>
#include <functional>

#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace slacker::resource {

struct CpuOptions {
  /// Number of cores (the paper's testbed is a quad-core Xeon).
  int cores = 4;
};

/// Multi-server FIFO CPU: up to `cores` jobs execute concurrently,
/// later arrivals queue. Used for per-operation query processing cost
/// and for backup prepare/apply work.
class CpuModel {
 public:
  CpuModel(sim::Simulator* sim, CpuOptions options);

  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  /// Runs a job needing `service` seconds of one core; `done` fires on
  /// completion.
  void Submit(SimTime service, std::function<void()> done);

  int busy_cores() const { return busy_cores_; }
  int cores() const { return options_.cores; }
  size_t queued() const { return queue_.size(); }
  double Utilization() const;
  void ResetStats();

 private:
  struct Job {
    SimTime service;
    std::function<void()> done;
  };

  void StartJob(Job job);
  void OnJobDone(std::function<void()> done);

  sim::Simulator* sim_;
  CpuOptions options_;
  int busy_cores_ = 0;
  std::deque<Job> queue_;
  SimTime core_busy_time_ = 0.0;
  SimTime stats_epoch_ = 0.0;
};

}  // namespace slacker::resource

#endif  // SLACKER_RESOURCE_CPU_H_
