#include "src/resource/cpu.h"

#include <utility>

namespace slacker::resource {

CpuModel::CpuModel(sim::Simulator* sim, CpuOptions options)
    : sim_(sim), options_(options) {}

void CpuModel::Submit(SimTime service, std::function<void()> done) {
  if (busy_cores_ < options_.cores) {
    StartJob(Job{service, std::move(done)});
  } else {
    queue_.push_back(Job{service, std::move(done)});
  }
}

void CpuModel::StartJob(Job job) {
  ++busy_cores_;
  core_busy_time_ += job.service;
  sim_->After(job.service, [this, done = std::move(job.done)]() mutable {
    OnJobDone(std::move(done));
  });
}

void CpuModel::OnJobDone(std::function<void()> done) {
  --busy_cores_;
  if (!queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    StartJob(std::move(next));
  }
  if (done) done();
}

double CpuModel::Utilization() const {
  const SimTime elapsed = sim_->Now() - stats_epoch_;
  if (elapsed <= 0.0) return 0.0;
  const double capacity = elapsed * options_.cores;
  double util = core_busy_time_ / capacity;
  return util > 1.0 ? 1.0 : util;
}

void CpuModel::ResetStats() {
  core_busy_time_ = 0.0;
  stats_epoch_ = sim_->Now();
}

}  // namespace slacker::resource
