#ifndef SLACKER_RESOURCE_DISK_H_
#define SLACKER_RESOURCE_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/common/metric_types.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace slacker::resource {

/// Access pattern of a disk request. Random requests always pay a seek;
/// sequential requests pay one only when the head moved away (another
/// stream was served in between), which is how a migration's bulk read
/// degrades from standalone bandwidth when interleaved with OLTP I/O.
enum class IoKind { kRandomRead, kRandomWrite, kSequentialRead,
                    kSequentialWrite };

struct DiskOptions {
  /// Average positioning cost (seek + rotational) per discontiguous
  /// request. 2011-era 7.2k SATA: ~7-8 ms.
  SimTime seek_time = 0.0075;
  /// Media transfer bandwidth once positioned, bytes/sec.
  double transfer_bytes_per_sec = 90.0 * static_cast<double>(kMiB);
};

/// Single-spindle FIFO disk. One request is serviced at a time; others
/// queue. This shared queue is *the* contention point the paper's
/// migration slack is about: tenant page reads and the migration's
/// snapshot reads compete here.
class DiskModel {
 public:
  /// `name` appears in stats/debug output.
  DiskModel(sim::Simulator* sim, DiskOptions options, std::string name = "");

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  /// Enqueues a request; `done` fires (via the simulator) when the
  /// request completes.
  void Submit(IoKind kind, uint64_t bytes, std::function<void()> done,
              uint64_t stream_id = 0);

  /// Service time such a request would take in isolation (no queueing).
  SimTime ServiceTime(IoKind kind, uint64_t bytes, uint64_t stream_id) const;

  size_t QueueDepth() const { return queue_.size() + (busy_ ? 1 : 0); }

  /// Fraction of time the disk was busy since construction (or the last
  /// ResetStats).
  double Utilization() const;
  uint64_t total_requests() const { return total_requests_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  const RunningStats& wait_stats() const { return wait_stats_; }
  void ResetStats();

  const DiskOptions& options() const { return options_; }

  /// Mirrors QueueDepth into `queue_depth` on every submit/complete.
  /// Pass nullptr to detach; off by default.
  void AttachObs(common::Gauge* queue_depth) {
    queue_depth_gauge_ = queue_depth;
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<double>(QueueDepth()));
    }
  }

 private:
  struct Request {
    IoKind kind;
    uint64_t bytes;
    uint64_t stream_id;
    SimTime submitted;
    std::function<void()> done;
  };

  void StartNext();
  static bool IsSequential(IoKind kind) {
    return kind == IoKind::kSequentialRead || kind == IoKind::kSequentialWrite;
  }
  static bool IsRead(IoKind kind) {
    return kind == IoKind::kRandomRead || kind == IoKind::kSequentialRead;
  }

  sim::Simulator* sim_;
  DiskOptions options_;
  std::string name_;
  std::deque<Request> queue_;
  bool busy_ = false;
  // Stream id of the last serviced request; sequential requests from
  // the same stream skip the seek (head already positioned).
  uint64_t last_stream_ = UINT64_MAX;
  bool last_was_sequential_ = false;

  common::Gauge* queue_depth_gauge_ = nullptr;

  SimTime busy_time_ = 0.0;
  SimTime stats_epoch_ = 0.0;
  uint64_t total_requests_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  RunningStats wait_stats_;
};

}  // namespace slacker::resource

#endif  // SLACKER_RESOURCE_DISK_H_
