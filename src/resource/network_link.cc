#include "src/resource/network_link.h"

#include <algorithm>
#include <utility>

namespace slacker::resource {

NetworkLink::NetworkLink(sim::Simulator* sim, NetworkLinkOptions options)
    : sim_(sim), options_(options) {}

void NetworkLink::Send(uint64_t bytes, std::function<void()> delivered) {
  const SimTime transmit =
      static_cast<double>(bytes) / options_.bandwidth_bytes_per_sec;
  const SimTime start = std::max(sim_->Now(), wire_free_at_);
  wire_free_at_ = start + transmit;
  busy_time_ += transmit;
  bytes_sent_ += bytes;
  const SimTime arrival = wire_free_at_ + options_.latency;
  sim_->At(arrival, std::move(delivered));
}

double NetworkLink::Utilization() const {
  const SimTime elapsed = sim_->Now() - stats_epoch_;
  if (elapsed <= 0.0) return 0.0;
  double util = busy_time_ / elapsed;
  return util > 1.0 ? 1.0 : util;
}

void NetworkLink::ResetStats() {
  busy_time_ = 0.0;
  bytes_sent_ = 0;
  stats_epoch_ = sim_->Now();
}

}  // namespace slacker::resource
