#ifndef SLACKER_RESOURCE_NETWORK_LINK_H_
#define SLACKER_RESOURCE_NETWORK_LINK_H_

#include <cstdint>
#include <functional>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace slacker::resource {

struct NetworkLinkOptions {
  /// Gigabit Ethernet, as in the paper's testbed.
  double bandwidth_bytes_per_sec = 125.0 * static_cast<double>(kMiB);
  /// One-way propagation + stack latency per message.
  SimTime latency = 0.0002;
};

/// Point-to-point link modeled as a FIFO pipe: transmissions serialize
/// at the sender, each taking bytes/bandwidth, then arrive after the
/// propagation latency. The migration stream and control messages share
/// this (in practice the 4-30 MB/s throttle, not the gigabit link, is
/// the migration bottleneck — exactly as in the paper).
class NetworkLink {
 public:
  NetworkLink(sim::Simulator* sim, NetworkLinkOptions options);

  NetworkLink(const NetworkLink&) = delete;
  NetworkLink& operator=(const NetworkLink&) = delete;

  /// Sends `bytes`; `delivered` fires at the receiver when the last
  /// byte arrives.
  void Send(uint64_t bytes, std::function<void()> delivered);

  uint64_t bytes_sent() const { return bytes_sent_; }
  double Utilization() const;
  void ResetStats();

 private:
  sim::Simulator* sim_;
  NetworkLinkOptions options_;
  // Virtual-finish-time pipe: the wire is free again at this instant.
  SimTime wire_free_at_ = 0.0;
  uint64_t bytes_sent_ = 0;
  SimTime busy_time_ = 0.0;
  SimTime stats_epoch_ = 0.0;
};

}  // namespace slacker::resource

#endif  // SLACKER_RESOURCE_NETWORK_LINK_H_
