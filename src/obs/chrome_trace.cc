#include "src/obs/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <vector>

namespace slacker::obs {
namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Microseconds with fixed precision so output is byte-stable.
void AppendMicros(SimTime seconds, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  *out += buf;
}

void AppendNumber(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendArgs(const std::vector<std::pair<std::string, double>>& args,
                const std::vector<std::pair<std::string, std::string>>& notes,
                std::string* out) {
  *out += "\"args\":{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    AppendEscaped(key, out);
    *out += "\":";
    AppendNumber(value, out);
  }
  for (const auto& [key, value] : notes) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    AppendEscaped(key, out);
    *out += "\":\"";
    AppendEscaped(value, out);
    *out += '"';
  }
  *out += '}';
}

/// Maps each track name to a stable small thread id, in first-appearance
/// order (spans first, then events), so the viewer row order follows
/// the order the simulation touched the tracks.
class TrackIds {
 public:
  explicit TrackIds(const Tracer& tracer) {
    for (const SpanRecord& span : tracer.spans()) Intern(span.track);
    for (const Event& event : tracer.events()) Intern(event.track);
  }

  int Tid(const std::string& track) const { return ids_.at(track); }
  const std::vector<std::string>& ordered() const { return ordered_; }

 private:
  void Intern(const std::string& track) {
    if (ids_.emplace(track, static_cast<int>(ordered_.size()) + 1).second) {
      ordered_.push_back(track);
    }
  }

  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> ordered_;
};

}  // namespace

std::string ToChromeTraceJson(const Tracer& tracer) {
  const TrackIds tracks(tracer);
  std::string out;
  out.reserve(256 + 160 * (tracer.spans().size() + tracer.events().size()));
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&first, &out] {
    if (!first) out += ',';
    first = false;
  };

  // Thread-name metadata: one row per track.
  for (size_t i = 0; i < tracks.ordered().size(); ++i) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(i + 1);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendEscaped(tracks.ordered()[i], &out);
    out += "\"}}";
  }

  for (const SpanRecord& span : tracer.spans()) {
    comma();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(tracks.Tid(span.track));
    out += ",\"name\":\"";
    AppendEscaped(span.name, &out);
    out += "\",\"cat\":\"";
    AppendEscaped(span.category, &out);
    out += "\",\"ts\":";
    AppendMicros(span.begin, &out);
    out += ",\"dur\":";
    AppendMicros(span.end - span.begin, &out);
    out += ',';
    AppendArgs(span.args, span.notes, &out);
    out += '}';
  }

  for (const Event& event : tracer.events()) {
    comma();
    if (event.kind == EventKind::kCounter) {
      out += "{\"ph\":\"C\",\"pid\":1,\"tid\":";
    } else {
      out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
    }
    out += std::to_string(tracks.Tid(event.track));
    out += ",\"name\":\"";
    AppendEscaped(event.name, &out);
    out += "\",\"cat\":\"";
    AppendEscaped(event.category, &out);
    out += "\",\"ts\":";
    AppendMicros(event.time, &out);
    out += ',';
    AppendArgs(event.args, event.notes, &out);
    out += '}';
  }

  out += "]}";
  return out;
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open trace file: " + path);
  }
  const std::string json = ToChromeTraceJson(tracer);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace slacker::obs
