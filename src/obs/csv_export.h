#ifndef SLACKER_OBS_CSV_EXPORT_H_
#define SLACKER_OBS_CSV_EXPORT_H_

#include <string>

#include "src/common/status.h"
#include "src/obs/metric_registry.h"

namespace slacker::obs {

/// Renders every sampled counter/gauge series as long-format CSV:
///
///   time_s,metric,value
///   1.000,"disk_util{server=0}",0.42
///
/// Rows are sorted by (time, registration order), so plotting tools can
/// pivot on `metric` directly. Deterministic: identical registries
/// produce identical bytes. Histograms are summarized at the end as
/// `<name>.count/.mean/.p95/.max` rows stamped with the last sample
/// time (0 if nothing was sampled).
std::string ToCsv(const MetricRegistry& registry);

/// Writes ToCsv(registry) to `path`.
Status WriteCsv(const MetricRegistry& registry, const std::string& path);

}  // namespace slacker::obs

#endif  // SLACKER_OBS_CSV_EXPORT_H_
