#ifndef SLACKER_OBS_CHROME_TRACE_H_
#define SLACKER_OBS_CHROME_TRACE_H_

#include <string>

#include "src/common/status.h"
#include "src/obs/trace.h"

namespace slacker::obs {

/// Renders the tracer's spans and events as Chrome trace-event JSON,
/// loadable in chrome://tracing or https://ui.perfetto.dev. Tracks map
/// to thread rows (named via metadata events); spans become "X"
/// duration events, instants "i", counter samples "C". Timestamps are
/// simulated microseconds. Output is deterministic: given identical
/// tracer contents, the bytes are identical.
std::string ToChromeTraceJson(const Tracer& tracer);

/// Writes ToChromeTraceJson(tracer) to `path`.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

}  // namespace slacker::obs

#endif  // SLACKER_OBS_CHROME_TRACE_H_
