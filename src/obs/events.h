#ifndef SLACKER_OBS_EVENTS_H_
#define SLACKER_OBS_EVENTS_H_

#include <cstdint>
#include <string>

#include "src/obs/trace.h"

namespace slacker::obs {

// Typed structured events — the domain vocabulary of a Slacker trace.
// Each Emit* helper is null-safe (a null or disabled tracer makes it a
// no-op) and owns the canonical event/track naming, so every emitter
// and every exporter agree on what a "throttle" event looks like.

/// Track naming shared by emitters and instrumented classes.
std::string MigrationTrack(uint64_t tenant_id);
std::string SupervisorTrack(uint64_t tenant_id);
std::string ServerTrack(uint64_t server_id);
inline const char* FaultTrack() { return "faults"; }
inline const char* SlaTrack() { return "sla"; }
inline const char* RebalancerTrack() { return "rebalancer"; }
inline const char* UpgradeTrack() { return "upgrade"; }
inline const char* ForecastTrack() { return "forecast"; }

/// A migration moved between phases (negotiate → snapshot → ...).
struct PhaseTransition {
  uint64_t tenant_id = 0;
  uint64_t source_server = 0;
  uint64_t target_server = 0;
  std::string from;
  std::string to;
};
void EmitPhaseTransition(Tracer* tracer, const PhaseTransition& e);

/// One controller tick's throttle decision, with the PID decomposition
/// when a PID-family policy drove it (p/i/d are the velocity-form
/// per-term deltas for that tick).
struct ThrottleUpdate {
  uint64_t tenant_id = 0;
  std::string policy;
  double rate_mbps = 0.0;
  double latency_ms = 0.0;
  bool has_pid_terms = false;
  double setpoint_ms = 0.0;
  double error_ms = 0.0;
  double p = 0.0;
  double i = 0.0;
  double d = 0.0;
};
void EmitThrottleUpdate(Tracer* tracer, const ThrottleUpdate& e);

/// One delta round left the source.
struct DeltaRoundShipped {
  uint64_t tenant_id = 0;
  int round = 0;
  uint64_t bytes = 0;
  /// Binlog bytes still unshipped after this round was read — the lag
  /// the convergence loop is trying to drive to zero.
  uint64_t remaining_bytes = 0;
};
void EmitDeltaRoundShipped(Tracer* tracer, const DeltaRoundShipped& e);

/// One snapshot chunk left the source.
struct SnapshotChunkSent {
  uint64_t tenant_id = 0;
  uint64_t seq = 0;
  uint64_t bytes = 0;
};
void EmitSnapshotChunkSent(Tracer* tracer, const SnapshotChunkSent& e);

/// One chunk (snapshot or delta round) left the source through the
/// codec pipeline: which codec the selector picked and what it cost.
struct CodecChunkEncoded {
  uint64_t tenant_id = 0;
  uint64_t seq = 0;
  std::string codec;
  uint64_t logical_bytes = 0;
  uint64_t wire_bytes = 0;
  double cpu_ms = 0.0;
};
void EmitCodecChunkEncoded(Tracer* tracer, const CodecChunkEncoded& e);

/// The target NACKed the stream; the source rewinds (go-back-N).
struct SnapshotNack {
  uint64_t tenant_id = 0;
  uint64_t rewind_to_seq = 0;
  uint64_t chunks_resent = 0;
};
void EmitSnapshotNack(Tracer* tracer, const SnapshotNack& e);

/// A supervisor scheduled a retry after a failed attempt.
struct SupervisorRetry {
  uint64_t tenant_id = 0;
  int attempt = 0;
  double backoff_seconds = 0.0;
  std::string status;
};
void EmitSupervisorRetry(Tracer* tracer, const SupervisorRetry& e);

/// A cluster fault fired (crash/restart/partition/heal).
struct FaultFired {
  std::string kind;
  uint64_t server_id = 0;
  bool has_peer = false;
  uint64_t peer = 0;
};
void EmitFaultFired(Tracer* tracer, const FaultFired& e);

/// A transaction completed above the SLA latency threshold.
struct SlaViolation {
  uint64_t tenant_id = 0;
  double latency_ms = 0.0;
  double threshold_ms = 0.0;
};
void EmitSlaViolation(Tracer* tracer, const SlaViolation& e);

/// The rebalancer's admission verdict on one migration plan — the
/// trace answers *why* a plan ran or was held back.
struct RebalanceDecision {
  uint64_t tenant_id = 0;
  uint64_t source_server = 0;
  uint64_t target_server = 0;
  bool admitted = false;
  /// "relief" or "consolidation".
  std::string kind;
  /// "admitted", or the deferral reason: "tenant-busy",
  /// "budget:total", "budget:source", "budget:target", "guard-band".
  std::string reason;
};
void EmitRebalanceDecision(Tracer* tracer, const RebalanceDecision& e);

/// A server entered or left drain mode (maintenance evacuation).
struct ServerDrain {
  uint64_t server_id = 0;
  bool draining = false;
  /// Tenants still hosted when the state flipped.
  uint64_t tenants_remaining = 0;
};
void EmitServerDrain(Tracer* tracer, const ServerDrain& e);

/// A server's software version changed (patch or rollback).
struct ServerVersionChange {
  uint64_t server_id = 0;
  uint32_t from_version = 0;
  uint32_t to_version = 0;
};
void EmitServerVersionChange(Tracer* tracer, const ServerVersionChange& e);

/// A mixed-version migration pair resolved its codec capability set.
struct CodecNegotiated {
  uint64_t tenant_id = 0;
  uint32_t source_version = 0;
  uint32_t target_version = 0;
  /// Requested vs. negotiated CodecMode names ("raw", "lz", ...).
  std::string requested;
  std::string negotiated;
};
void EmitCodecNegotiated(Tracer* tracer, const CodecNegotiated& e);

/// A rolling-upgrade wave changed state (drain/patch/observe/...), or
/// the whole run finished. `action` is one of "wave_wait_trough",
/// "wave_drain", "wave_patch", "wave_observe", "wave_done", "gate_trip",
/// "rollback", "upgrade_done", "upgrade_aborted".
struct UpgradeWaveEvent {
  int wave = 0;
  std::string action;
  int servers_in_wave = 0;
  double violation_seconds = 0.0;
  uint64_t failed_migrations = 0;
  std::string detail;
};
void EmitUpgradeWaveEvent(Tracer* tracer, const UpgradeWaveEvent& e);

/// The forecast subsystem re-ran cycle detection for a server: the
/// discovered period/phase, the model's current prediction, and the
/// one-step forecast error (DESIGN.md §13).
struct ForecastUpdated {
  uint64_t server_id = 0;
  bool periodic = false;
  double period_seconds = 0.0;
  /// Trough phase offset within the period (seconds from the sampling
  /// epoch, mod period).
  double trough_phase_seconds = 0.0;
  double confidence = 0.0;
  double current_load = 0.0;
  double predicted_load = 0.0;
  /// EWMA of |one-step-ahead forecast error| in load units.
  double mean_abs_error = 0.0;
  double next_trough_start = 0.0;
};
void EmitForecastUpdated(Tracer* tracer, const ForecastUpdated& e);

/// The trough scheduler deferred a unit of non-urgent work into a
/// predicted trough: when it will run, its hard deadline, and the
/// predicted violation-seconds saved by waiting.
struct TroughScheduled {
  uint64_t tenant_id = 0;
  uint64_t source_server = 0;
  uint64_t target_server = 0;
  /// "consolidation", "drain", "upgrade-wave".
  std::string kind;
  double scheduled_start = 0.0;
  double deadline = 0.0;
  double cost_now = 0.0;
  double cost_scheduled = 0.0;
};
void EmitTroughScheduled(Tracer* tracer, const TroughScheduled& e);

/// One rebalancer control-loop tick's summary.
struct RebalanceTick {
  int overloaded_servers = 0;
  int plans = 0;
  int admitted = 0;
  int deferred = 0;
  int inflight = 0;
};
void EmitRebalanceTick(Tracer* tracer, const RebalanceTick& e);

}  // namespace slacker::obs

#endif  // SLACKER_OBS_EVENTS_H_
