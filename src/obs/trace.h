#ifndef SLACKER_OBS_TRACE_H_
#define SLACKER_OBS_TRACE_H_

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/obs/metric_registry.h"

namespace slacker::obs {

/// One closed span: a named interval of simulated time on a track
/// (tracks become rows in the Chrome trace viewer — one per server,
/// migration, or supervisor).
struct SpanRecord {
  std::string track;
  std::string name;
  std::string category;
  SimTime begin = 0.0;
  SimTime end = 0.0;
  /// Numeric attributes (bytes, rates, PID terms...).
  std::vector<std::pair<std::string, double>> args;
  /// String attributes (status, policy name...).
  std::vector<std::pair<std::string, std::string>> notes;
};

enum class EventKind {
  /// Point-in-time marker (throttle change, fault, SLA violation).
  kInstant,
  /// Sampled counter value — the Chrome viewer draws these as graphs.
  kCounter,
};

/// One structured event.
struct Event {
  EventKind kind = EventKind::kInstant;
  std::string track;
  std::string name;
  std::string category;
  SimTime time = 0.0;
  std::vector<std::pair<std::string, double>> args;
  std::vector<std::pair<std::string, std::string>> notes;
};

class Tracer;

/// RAII span handle. Opens at construction (reading the tracer's
/// sim-time clock), closes at destruction, explicit End(), or move
/// assignment over it. A default-constructed span, one built against a
/// null tracer, or one built while the tracer is disabled is *inert*:
/// every method is a no-op, no string is copied, nothing allocates —
/// cheap enough to leave instrumentation compiled in unconditionally.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(Tracer* tracer, std::string_view track, std::string_view name,
            std::string_view category = "span");
  ~TraceSpan() { End(); }

  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void AddArg(std::string_view key, double value);
  void AddNote(std::string_view key, std::string_view value);

  /// Closes the span now (idempotent; the destructor calls it too).
  void End();

  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

/// Sim-time trace recorder: nested spans, typed instant events, and a
/// metric registry, all timestamped from a caller-supplied clock (the
/// simulator's Now). Call sites hold a `Tracer*` that is null by
/// default — observability is off unless a harness installs a tracer.
class Tracer {
 public:
  using Clock = std::function<SimTime()>;

  explicit Tracer(Clock clock) : clock_(std::move(clock)) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Pausing drops new spans/events (in-flight TraceSpans built while
  /// enabled still record on close).
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  SimTime NowSim() const { return clock_(); }

  void RecordSpan(SpanRecord record) {
    if (enabled_) spans_.push_back(std::move(record));
  }
  void RecordEvent(Event event) {
    if (enabled_) events_.push_back(std::move(event));
  }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<Event>& events() const { return events_; }

  MetricRegistry* registry() { return &registry_; }
  const MetricRegistry& registry() const { return registry_; }

  /// Drops buffered spans/events (metrics are kept) — for long-running
  /// collectors that export incrementally.
  void Clear() {
    spans_.clear();
    events_.clear();
  }

 private:
  Clock clock_;
  bool enabled_ = true;
  std::vector<SpanRecord> spans_;
  std::vector<Event> events_;
  MetricRegistry registry_;
};

}  // namespace slacker::obs

#endif  // SLACKER_OBS_TRACE_H_
