#include "src/obs/metric_registry.h"

namespace slacker::obs {

std::string MetricRegistry::FullName(const std::string& name,
                                     const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

Counter* MetricRegistry::FindOrCreateCounter(const std::string& name,
                                             const std::string& labels) {
  const std::string full = FullName(name, labels);
  auto it = by_name_.find(full);
  if (it != by_name_.end()) return &counters_[order_[it->second].index];
  counters_.emplace_back();
  counter_series_.emplace_back();
  by_name_[full] = order_.size();
  order_.push_back(Slot{Kind::kCounter, full, counters_.size() - 1});
  return &counters_.back();
}

Gauge* MetricRegistry::FindOrCreateGauge(const std::string& name,
                                         const std::string& labels) {
  const std::string full = FullName(name, labels);
  auto it = by_name_.find(full);
  if (it != by_name_.end()) return &gauges_[order_[it->second].index];
  gauges_.emplace_back();
  gauge_series_.emplace_back();
  by_name_[full] = order_.size();
  order_.push_back(Slot{Kind::kGauge, full, gauges_.size() - 1});
  return &gauges_.back();
}

Histogram* MetricRegistry::FindOrCreateHistogram(const std::string& name,
                                                 const std::string& labels) {
  const std::string full = FullName(name, labels);
  auto it = by_name_.find(full);
  if (it != by_name_.end()) return &histograms_[order_[it->second].index];
  histograms_.emplace_back();
  by_name_[full] = order_.size();
  order_.push_back(Slot{Kind::kHistogram, full, histograms_.size() - 1});
  return &histograms_.back();
}

void MetricRegistry::SampleSeries(SimTime now) {
  for (const Slot& slot : order_) {
    switch (slot.kind) {
      case Kind::kCounter:
        counter_series_[slot.index].points.emplace_back(
            now, static_cast<double>(counters_[slot.index].value()));
        break;
      case Kind::kGauge:
        gauge_series_[slot.index].points.emplace_back(
            now, gauges_[slot.index].value());
        break;
      case Kind::kHistogram:
        break;  // Distributions are exported whole, not sampled.
    }
  }
}

std::vector<MetricRegistry::Entry> MetricRegistry::Entries() const {
  std::vector<Entry> out;
  out.reserve(order_.size());
  for (const Slot& slot : order_) {
    Entry entry;
    entry.kind = slot.kind;
    entry.full_name = slot.full_name;
    switch (slot.kind) {
      case Kind::kCounter:
        entry.counter = &counters_[slot.index];
        entry.series = &counter_series_[slot.index];
        break;
      case Kind::kGauge:
        entry.gauge = &gauges_[slot.index];
        entry.series = &gauge_series_[slot.index];
        break;
      case Kind::kHistogram:
        entry.histogram = &histograms_[slot.index];
        break;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace slacker::obs
