#ifndef SLACKER_OBS_METRIC_REGISTRY_H_
#define SLACKER_OBS_METRIC_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace slacker::obs {

/// Monotonically increasing count. Hot-path increments are a single
/// add on a stable pointer — safe to leave compiled into hot loops
/// (the simulator is single-threaded, so no atomics are needed; the
/// layout mirrors what a relaxed atomic would be in a threaded build).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (queue depth, throttle rate).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed distribution (latencies). Buckets double from 1 upward,
/// so percentiles are exact to a factor of 2 — enough for dashboards;
/// exact percentiles stay with common/stats.
class Histogram {
 public:
  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  /// Upper edge of the bucket holding the p-th percentile (nearest
  /// rank), p in (0, 100].
  double Percentile(double p) const;

 private:
  static constexpr int kBuckets = 64;
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One metric's sampled (time, value) history, appended by
/// MetricRegistry::SampleSeries.
struct MetricSeries {
  std::vector<std::pair<SimTime, double>> points;
};

/// Labeled counters/gauges/histograms with stable handles. Handles stay
/// valid for the registry's lifetime (deque storage); lookups by name
/// happen only at attach time, never on the hot path.
class MetricRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// A full name is "name" or "name{labels}".
  Counter* FindOrCreateCounter(const std::string& name,
                               const std::string& labels = "");
  Gauge* FindOrCreateGauge(const std::string& name,
                           const std::string& labels = "");
  Histogram* FindOrCreateHistogram(const std::string& name,
                                   const std::string& labels = "");

  /// Appends (now, current value) to every counter's and gauge's series
  /// — the periodic sampler (MetricsCollector) drives this once per
  /// tick so CSV export sees a regular time series.
  void SampleSeries(SimTime now);

  /// Flattened view for exporters, in registration order.
  struct Entry {
    Kind kind;
    std::string full_name;
    const Counter* counter = nullptr;    // kCounter
    const Gauge* gauge = nullptr;        // kGauge
    const Histogram* histogram = nullptr;  // kHistogram
    const MetricSeries* series = nullptr;  // counters and gauges only
  };
  std::vector<Entry> Entries() const;

  size_t size() const { return order_.size(); }

 private:
  struct Slot {
    Kind kind;
    std::string full_name;
    size_t index;  // Into the kind's deque.
  };

  static std::string FullName(const std::string& name,
                              const std::string& labels);

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::deque<MetricSeries> counter_series_;
  std::deque<MetricSeries> gauge_series_;
  std::vector<Slot> order_;
  std::unordered_map<std::string, size_t> by_name_;  // full name -> order_.
};

}  // namespace slacker::obs

#endif  // SLACKER_OBS_METRIC_REGISTRY_H_
