#ifndef SLACKER_OBS_METRIC_REGISTRY_H_
#define SLACKER_OBS_METRIC_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/metric_types.h"
#include "src/common/units.h"

namespace slacker::obs {

// The instrument primitives (Counter, Gauge, Histogram) are defined in
// src/common/metric_types.h so modules below obs can expose AttachObs
// hooks; obs re-exports them under their historical names.
using common::Counter;
using common::Gauge;
using common::Histogram;

/// One metric's sampled (time, value) history, appended by
/// MetricRegistry::SampleSeries.
struct MetricSeries {
  std::vector<std::pair<SimTime, double>> points;
};

/// Labeled counters/gauges/histograms with stable handles. Handles stay
/// valid for the registry's lifetime (deque storage); lookups by name
/// happen only at attach time, never on the hot path.
class MetricRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// A full name is "name" or "name{labels}".
  Counter* FindOrCreateCounter(const std::string& name,
                               const std::string& labels = "");
  Gauge* FindOrCreateGauge(const std::string& name,
                           const std::string& labels = "");
  Histogram* FindOrCreateHistogram(const std::string& name,
                                   const std::string& labels = "");

  /// Appends (now, current value) to every counter's and gauge's series
  /// — the periodic sampler (MetricsCollector) drives this once per
  /// tick so CSV export sees a regular time series.
  void SampleSeries(SimTime now);

  /// Flattened view for exporters, in registration order.
  struct Entry {
    Kind kind;
    std::string full_name;
    const Counter* counter = nullptr;    // kCounter
    const Gauge* gauge = nullptr;        // kGauge
    const Histogram* histogram = nullptr;  // kHistogram
    const MetricSeries* series = nullptr;  // counters and gauges only
  };
  std::vector<Entry> Entries() const;

  size_t size() const { return order_.size(); }

 private:
  struct Slot {
    Kind kind;
    std::string full_name;
    size_t index;  // Into the kind's deque.
  };

  static std::string FullName(const std::string& name,
                              const std::string& labels);

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::deque<MetricSeries> counter_series_;
  std::deque<MetricSeries> gauge_series_;
  std::vector<Slot> order_;
  std::unordered_map<std::string, size_t> by_name_;  // full name -> order_.
};

}  // namespace slacker::obs

#endif  // SLACKER_OBS_METRIC_REGISTRY_H_
