#include "src/obs/events.h"

#include <utility>

namespace slacker::obs {
namespace {

bool Off(const Tracer* tracer) {
  return tracer == nullptr || !tracer->enabled();
}

Event MakeInstant(const Tracer* tracer, std::string track, std::string name,
                  std::string category) {
  Event event;
  event.kind = EventKind::kInstant;
  event.track = std::move(track);
  event.name = std::move(name);
  event.category = std::move(category);
  event.time = tracer->NowSim();
  return event;
}

}  // namespace

std::string MigrationTrack(uint64_t tenant_id) {
  return "tenant " + std::to_string(tenant_id) + " migration";
}

std::string SupervisorTrack(uint64_t tenant_id) {
  return "tenant " + std::to_string(tenant_id) + " supervisor";
}

std::string ServerTrack(uint64_t server_id) {
  return "server " + std::to_string(server_id);
}

void EmitPhaseTransition(Tracer* tracer, const PhaseTransition& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, MigrationTrack(e.tenant_id),
                            "phase:" + e.to, "migration");
  event.args.emplace_back("tenant", static_cast<double>(e.tenant_id));
  event.args.emplace_back("source", static_cast<double>(e.source_server));
  event.args.emplace_back("target", static_cast<double>(e.target_server));
  event.notes.emplace_back("from", e.from);
  event.notes.emplace_back("to", e.to);
  tracer->RecordEvent(std::move(event));
}

void EmitThrottleUpdate(Tracer* tracer, const ThrottleUpdate& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, MigrationTrack(e.tenant_id), "throttle",
                            "control");
  event.args.emplace_back("rate_mbps", e.rate_mbps);
  event.args.emplace_back("latency_ms", e.latency_ms);
  if (e.has_pid_terms) {
    event.args.emplace_back("setpoint_ms", e.setpoint_ms);
    event.args.emplace_back("error_ms", e.error_ms);
    event.args.emplace_back("p", e.p);
    event.args.emplace_back("i", e.i);
    event.args.emplace_back("d", e.d);
  }
  event.notes.emplace_back("policy", e.policy);
  tracer->RecordEvent(std::move(event));

  // Companion counter event so the viewer graphs the rate over time.
  Event counter = MakeInstant(tracer, MigrationTrack(e.tenant_id),
                              "throttle_rate_mbps", "control");
  counter.kind = EventKind::kCounter;
  counter.args.emplace_back("mbps", e.rate_mbps);
  tracer->RecordEvent(std::move(counter));
}

void EmitDeltaRoundShipped(Tracer* tracer, const DeltaRoundShipped& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, MigrationTrack(e.tenant_id), "delta_round",
                            "migration");
  event.args.emplace_back("round", static_cast<double>(e.round));
  event.args.emplace_back("bytes", static_cast<double>(e.bytes));
  event.args.emplace_back("remaining_bytes",
                          static_cast<double>(e.remaining_bytes));
  tracer->RecordEvent(std::move(event));
}

void EmitSnapshotChunkSent(Tracer* tracer, const SnapshotChunkSent& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, MigrationTrack(e.tenant_id),
                            "snapshot_chunk", "migration");
  event.args.emplace_back("seq", static_cast<double>(e.seq));
  event.args.emplace_back("bytes", static_cast<double>(e.bytes));
  tracer->RecordEvent(std::move(event));
}

void EmitCodecChunkEncoded(Tracer* tracer, const CodecChunkEncoded& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, MigrationTrack(e.tenant_id),
                            "codec_chunk", "codec");
  event.args.emplace_back("seq", static_cast<double>(e.seq));
  event.args.emplace_back("logical_bytes",
                          static_cast<double>(e.logical_bytes));
  event.args.emplace_back("wire_bytes", static_cast<double>(e.wire_bytes));
  event.args.emplace_back("cpu_ms", e.cpu_ms);
  event.notes.emplace_back("codec", e.codec);
  tracer->RecordEvent(std::move(event));
}

void EmitSnapshotNack(Tracer* tracer, const SnapshotNack& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, MigrationTrack(e.tenant_id),
                            "snapshot_nack", "migration");
  event.args.emplace_back("rewind_to_seq",
                          static_cast<double>(e.rewind_to_seq));
  event.args.emplace_back("chunks_resent",
                          static_cast<double>(e.chunks_resent));
  tracer->RecordEvent(std::move(event));
}

void EmitSupervisorRetry(Tracer* tracer, const SupervisorRetry& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, SupervisorTrack(e.tenant_id), "retry",
                            "supervisor");
  event.args.emplace_back("attempt", static_cast<double>(e.attempt));
  event.args.emplace_back("backoff_s", e.backoff_seconds);
  event.notes.emplace_back("status", e.status);
  tracer->RecordEvent(std::move(event));
}

void EmitFaultFired(Tracer* tracer, const FaultFired& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, FaultTrack(), "fault:" + e.kind, "fault");
  event.args.emplace_back("server", static_cast<double>(e.server_id));
  if (e.has_peer) {
    event.args.emplace_back("peer", static_cast<double>(e.peer));
  }
  event.notes.emplace_back("kind", e.kind);
  tracer->RecordEvent(std::move(event));
}

void EmitSlaViolation(Tracer* tracer, const SlaViolation& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, SlaTrack(), "sla_violation", "sla");
  event.args.emplace_back("tenant", static_cast<double>(e.tenant_id));
  event.args.emplace_back("latency_ms", e.latency_ms);
  event.args.emplace_back("threshold_ms", e.threshold_ms);
  tracer->RecordEvent(std::move(event));
}

void EmitRebalanceDecision(Tracer* tracer, const RebalanceDecision& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, RebalancerTrack(),
                            e.admitted ? "plan_admitted" : "plan_deferred",
                            "rebalance");
  event.args.emplace_back("tenant", static_cast<double>(e.tenant_id));
  event.args.emplace_back("source", static_cast<double>(e.source_server));
  event.args.emplace_back("target", static_cast<double>(e.target_server));
  event.notes.emplace_back("kind", e.kind);
  event.notes.emplace_back("reason", e.reason);
  tracer->RecordEvent(std::move(event));
}

void EmitServerDrain(Tracer* tracer, const ServerDrain& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, UpgradeTrack(),
                            e.draining ? "drain_start" : "drain_end",
                            "upgrade");
  event.args.emplace_back("server", static_cast<double>(e.server_id));
  event.args.emplace_back("tenants_remaining",
                          static_cast<double>(e.tenants_remaining));
  tracer->RecordEvent(std::move(event));
}

void EmitServerVersionChange(Tracer* tracer, const ServerVersionChange& e) {
  if (Off(tracer)) return;
  Event event =
      MakeInstant(tracer, UpgradeTrack(), "version_change", "upgrade");
  event.args.emplace_back("server", static_cast<double>(e.server_id));
  event.args.emplace_back("from", static_cast<double>(e.from_version));
  event.args.emplace_back("to", static_cast<double>(e.to_version));
  tracer->RecordEvent(std::move(event));
}

void EmitCodecNegotiated(Tracer* tracer, const CodecNegotiated& e) {
  if (Off(tracer)) return;
  Event event = MakeInstant(tracer, MigrationTrack(e.tenant_id),
                            "codec_negotiated", "upgrade");
  event.args.emplace_back("source_version",
                          static_cast<double>(e.source_version));
  event.args.emplace_back("target_version",
                          static_cast<double>(e.target_version));
  event.notes.emplace_back("requested", e.requested);
  event.notes.emplace_back("negotiated", e.negotiated);
  tracer->RecordEvent(std::move(event));
}

void EmitUpgradeWaveEvent(Tracer* tracer, const UpgradeWaveEvent& e) {
  if (Off(tracer)) return;
  Event event =
      MakeInstant(tracer, UpgradeTrack(), "upgrade:" + e.action, "upgrade");
  event.args.emplace_back("wave", static_cast<double>(e.wave));
  event.args.emplace_back("servers", static_cast<double>(e.servers_in_wave));
  event.args.emplace_back("violation_seconds", e.violation_seconds);
  event.args.emplace_back("failed_migrations",
                          static_cast<double>(e.failed_migrations));
  event.notes.emplace_back("action", e.action);
  if (!e.detail.empty()) event.notes.emplace_back("detail", e.detail);
  tracer->RecordEvent(std::move(event));
}

void EmitForecastUpdated(Tracer* tracer, const ForecastUpdated& e) {
  if (Off(tracer)) return;
  Event event =
      MakeInstant(tracer, ForecastTrack(), "forecast_update", "forecast");
  event.args.emplace_back("server", static_cast<double>(e.server_id));
  event.args.emplace_back("periodic", e.periodic ? 1.0 : 0.0);
  event.args.emplace_back("period_s", e.period_seconds);
  event.args.emplace_back("trough_phase_s", e.trough_phase_seconds);
  event.args.emplace_back("confidence", e.confidence);
  event.args.emplace_back("current_load", e.current_load);
  event.args.emplace_back("predicted_load", e.predicted_load);
  event.args.emplace_back("mae", e.mean_abs_error);
  event.args.emplace_back("next_trough_start", e.next_trough_start);
  tracer->RecordEvent(std::move(event));
}

void EmitTroughScheduled(Tracer* tracer, const TroughScheduled& e) {
  if (Off(tracer)) return;
  Event event =
      MakeInstant(tracer, ForecastTrack(), "trough_scheduled", "forecast");
  event.args.emplace_back("tenant", static_cast<double>(e.tenant_id));
  event.args.emplace_back("source", static_cast<double>(e.source_server));
  event.args.emplace_back("target", static_cast<double>(e.target_server));
  event.args.emplace_back("scheduled_start", e.scheduled_start);
  event.args.emplace_back("deadline", e.deadline);
  event.args.emplace_back("cost_now", e.cost_now);
  event.args.emplace_back("cost_scheduled", e.cost_scheduled);
  event.notes.emplace_back("kind", e.kind);
  tracer->RecordEvent(std::move(event));
}

void EmitRebalanceTick(Tracer* tracer, const RebalanceTick& e) {
  if (Off(tracer)) return;
  Event event =
      MakeInstant(tracer, RebalancerTrack(), "rebalance_tick", "rebalance");
  event.args.emplace_back("overloaded",
                          static_cast<double>(e.overloaded_servers));
  event.args.emplace_back("plans", static_cast<double>(e.plans));
  event.args.emplace_back("admitted", static_cast<double>(e.admitted));
  event.args.emplace_back("deferred", static_cast<double>(e.deferred));
  event.args.emplace_back("inflight", static_cast<double>(e.inflight));
  tracer->RecordEvent(std::move(event));

  // Companion counter so the viewer graphs hotspot count over time.
  Event counter = MakeInstant(tracer, RebalancerTrack(),
                              "overloaded_servers", "rebalance");
  counter.kind = EventKind::kCounter;
  counter.args.emplace_back("servers",
                            static_cast<double>(e.overloaded_servers));
  tracer->RecordEvent(std::move(counter));
}

}  // namespace slacker::obs
