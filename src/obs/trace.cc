#include "src/obs/trace.h"

namespace slacker::obs {

TraceSpan::TraceSpan(Tracer* tracer, std::string_view track,
                     std::string_view name, std::string_view category) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  record_.track = track;
  record_.name = name;
  record_.category = category;
  record_.begin = tracer->NowSim();
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_), record_(std::move(other.record_)) {
  other.tracer_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void TraceSpan::AddArg(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  record_.args.emplace_back(std::string(key), value);
}

void TraceSpan::AddNote(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  record_.notes.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  record_.end = tracer_->NowSim();
  tracer_->RecordSpan(std::move(record_));
  tracer_ = nullptr;
}

}  // namespace slacker::obs
