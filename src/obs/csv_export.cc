#include "src/obs/csv_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

namespace slacker::obs {
namespace {

void AppendTime(SimTime t, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  *out += buf;
}

void AppendValue(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendRow(SimTime t, const std::string& metric, double value,
               std::string* out) {
  AppendTime(t, out);
  *out += ",\"";
  // Metric names never contain quotes; labels use key=value pairs.
  *out += metric;
  *out += "\",";
  AppendValue(value, out);
  *out += '\n';
}

}  // namespace

std::string ToCsv(const MetricRegistry& registry) {
  const std::vector<MetricRegistry::Entry> entries = registry.Entries();

  // Gather (time, registration order) keyed rows, then sort so the file
  // reads chronologically with a stable within-tick metric order.
  struct Row {
    SimTime time;
    size_t order;
    double value;
  };
  std::vector<Row> rows;
  SimTime last_sample = 0.0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const MetricSeries* series = entries[i].series;
    if (series == nullptr) continue;
    for (const auto& [time, value] : series->points) {
      rows.push_back(Row{time, i, value});
      if (time > last_sample) last_sample = time;
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });

  std::string out = "time_s,metric,value\n";
  out.reserve(out.size() + 48 * rows.size());
  for (const Row& row : rows) {
    AppendRow(row.time, entries[row.order].full_name, row.value, &out);
  }

  // Histogram summaries: whole-run distributions, not time series.
  for (const MetricRegistry::Entry& entry : entries) {
    if (entry.kind != MetricRegistry::Kind::kHistogram) continue;
    const Histogram& h = *entry.histogram;
    AppendRow(last_sample, entry.full_name + ".count",
              static_cast<double>(h.count()), &out);
    AppendRow(last_sample, entry.full_name + ".mean", h.Mean(), &out);
    AppendRow(last_sample, entry.full_name + ".p95", h.Percentile(95.0), &out);
    AppendRow(last_sample, entry.full_name + ".max", h.max(), &out);
  }
  return out;
}

Status WriteCsv(const MetricRegistry& registry, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open csv file: " + path);
  }
  const std::string csv = ToCsv(registry);
  file.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  file.flush();
  if (!file) {
    return Status::Internal("short write to csv file: " + path);
  }
  return Status::Ok();
}

}  // namespace slacker::obs
