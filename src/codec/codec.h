#ifndef SLACKER_CODEC_CODEC_H_
#define SLACKER_CODEC_CODEC_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/common/units.h"

namespace slacker::codec {

/// Per-chunk encoding actually applied on the wire. The value is the
/// byte stored in the frame header, so the order is ABI: append only.
enum class Codec : uint8_t {
  kRaw = 0,    // Rows ship verbatim.
  kLz = 1,     // Deterministic LZ block compression of the payload.
  kDelta = 2,  // XOR/delta against a base the target already staged.
};

/// Operator-facing codec policy for a migration (--codec=...). kRaw /
/// kLz / kDelta force that encoding (kDelta still needs a base and
/// falls back to raw); kAdaptive lets the selector pick per chunk from
/// modeled CPU cost versus the current throttle rate.
enum class CodecMode {
  kRaw = 0,
  kLz,
  kDelta,
  kAdaptive,
};

const char* CodecName(Codec codec);
const char* CodecModeName(CodecMode mode);

/// Parses "raw" | "lz" | "delta" | "adaptive" (the --codec flag values).
Status ParseCodecMode(const std::string& text, CodecMode* out);

/// Codec policy + cost model for one migration. The rates are *modeled*
/// sim-time costs (bytes of input processed per core-second), not host
/// wall-clock — everything stays deterministic.
struct CodecConfig {
  CodecMode mode = CodecMode::kRaw;

  /// Fraction of each record payload that is redundant (constant
  /// filler) in the compressible workload model; the rest is
  /// incompressible seeded noise. Achievable LZ ratio ~= 1/(1 - r).
  double payload_redundancy = 0.5;

  /// Modeled single-core LZ compression throughput (source side).
  double compress_bytes_per_sec = 150.0 * static_cast<double>(kMiB);
  /// Modeled single-core decompression/verify throughput (target side).
  double decompress_bytes_per_sec = 600.0 * static_cast<double>(kMiB);
  /// Modeled single-core delta encode/apply throughput (both sides).
  double delta_bytes_per_sec = 400.0 * static_cast<double>(kMiB);

  /// Adaptive selector engages LZ only when spare CPU can compress at
  /// least `engage_headroom` times faster than the throttle drains wire
  /// bytes — compression must never become the new bottleneck.
  double engage_headroom = 1.25;

  /// EWMA smoothing for the observed compression ratio fed back into
  /// the selector.
  double ratio_ewma_alpha = 0.2;

  /// Source-side cache of transmitted chunks (delta bases); bounded so
  /// a huge snapshot cannot hold every chunk in memory.
  int max_cached_chunks = 256;

  Status Validate() const;
};

}  // namespace slacker::codec

#endif  // SLACKER_CODEC_CODEC_H_
