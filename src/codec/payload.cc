#include "src/codec/payload.h"

#include <algorithm>
#include <cmath>

namespace slacker::codec {

std::vector<uint8_t> MaterializeCompressiblePayload(
    const storage::Record& record, size_t logical_size, double redundancy) {
  std::vector<uint8_t> out(logical_size);
  const double clamped = std::clamp(redundancy, 0.0, 1.0);
  const size_t filler_bytes = std::min(
      logical_size,
      static_cast<size_t>(
          std::llround(clamped * static_cast<double>(logical_size))));
  const uint8_t filler = static_cast<uint8_t>(record.key * 0x9E3779B9u >> 24);
  std::fill(out.begin(), out.begin() + static_cast<ptrdiff_t>(filler_bytes),
            filler);
  // The incompressible tail is the same xorshift64 stream as
  // storage::MaterializePayload, advanced past the filler prefix.
  uint64_t state = record.digest ^ record.key;
  for (size_t i = filler_bytes; i < logical_size; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    out[i] = static_cast<uint8_t>(state);
  }
  return out;
}

}  // namespace slacker::codec
