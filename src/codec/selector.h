#ifndef SLACKER_CODEC_SELECTOR_H_
#define SLACKER_CODEC_SELECTOR_H_

#include <cstdint>

#include "src/codec/codec.h"

namespace slacker::codec {

/// Everything the selector looks at for one chunk. Cheap value type so
/// the migration job can assemble it from throttle + CPU model state
/// without the selector holding pointers into either.
struct SelectorInputs {
  /// Current throttle token rate — the pace at which *wire* bytes
  /// drain toward the target.
  double throttle_bytes_per_sec = 0.0;
  /// Source server CPU: total cores and cores currently busy. total 0
  /// means "no CPU model attached" and is treated as one free core.
  int total_cores = 0;
  double busy_cores = 0.0;
  /// Whether the source still holds the previously transmitted version
  /// of this chunk (a delta base the target also staged).
  bool has_delta_base = false;
  uint64_t logical_bytes = 0;
};

/// Adaptive per-chunk codec choice: delta beats everything when a base
/// exists (retransmissions), LZ engages only when spare CPU can
/// compress faster than the throttle drains wire bytes (with headroom),
/// and raw is the safe default. Feedback: ObserveRatio() folds achieved
/// compression ratios into an EWMA so the engage decision tracks the
/// workload's real compressibility, not just the configured model.
class CodecSelector {
 public:
  explicit CodecSelector(const CodecConfig& config);

  Codec Choose(const SelectorInputs& inputs) const;

  /// Reports an achieved logical/wire ratio for an LZ-encoded chunk.
  void ObserveRatio(double ratio);

  double expected_ratio() const { return expected_ratio_; }

 private:
  CodecConfig config_;
  double expected_ratio_;
};

}  // namespace slacker::codec

#endif  // SLACKER_CODEC_SELECTOR_H_
