#include "src/codec/frame.h"

#include "src/common/checksum.h"

namespace slacker::codec {
namespace {

constexpr uint8_t kFrameMagic = kCodecFrameMagic;
constexpr uint8_t kFrameVersion = 1;

void EncodeBody(const FrameHeader& frame, ByteWriter* writer) {
  writer->PutU8(kFrameMagic);
  writer->PutU8(kFrameVersion);
  writer->PutU8(static_cast<uint8_t>(frame.codec));
  writer->PutVarint64(frame.logical_bytes);
  writer->PutVarint64(frame.encoded_bytes);
  writer->PutFixed32(frame.payload_crc);
  writer->PutFixed32(frame.base_crc);
  writer->PutDouble(frame.payload_redundancy);
}

}  // namespace

void FrameHeader::EncodeTo(ByteWriter* writer) const {
  ByteWriter body;
  EncodeBody(*this, &body);
  const uint32_t header_crc = Crc32c(body.data());
  writer->PutBytes(body.data().data(), body.size());
  writer->PutFixed32(header_crc);
}

Status FrameHeader::DecodeFrom(ByteReader* reader) {
  uint8_t magic = 0;
  uint8_t version = 0;
  uint8_t codec_byte = 0;
  FrameHeader decoded;
  SLACKER_RETURN_IF_ERROR(reader->GetU8(&magic));
  if (magic != kFrameMagic) {
    return Status::Corruption("codec frame: bad magic");
  }
  SLACKER_RETURN_IF_ERROR(reader->GetU8(&version));
  if (version != kFrameVersion) {
    return Status::Corruption("codec frame: unsupported version");
  }
  SLACKER_RETURN_IF_ERROR(reader->GetU8(&codec_byte));
  if (codec_byte > static_cast<uint8_t>(Codec::kDelta)) {
    return Status::Corruption("codec frame: unknown codec id");
  }
  decoded.codec = static_cast<Codec>(codec_byte);
  SLACKER_RETURN_IF_ERROR(reader->GetVarint64(&decoded.logical_bytes));
  SLACKER_RETURN_IF_ERROR(reader->GetVarint64(&decoded.encoded_bytes));
  SLACKER_RETURN_IF_ERROR(reader->GetFixed32(&decoded.payload_crc));
  SLACKER_RETURN_IF_ERROR(reader->GetFixed32(&decoded.base_crc));
  SLACKER_RETURN_IF_ERROR(reader->GetDouble(&decoded.payload_redundancy));
  uint32_t header_crc = 0;
  SLACKER_RETURN_IF_ERROR(reader->GetFixed32(&header_crc));
  // The encoding is canonical (LEB128 varints, fixed-width ints), so
  // re-encoding the decoded fields reproduces the checksummed bytes.
  ByteWriter body;
  EncodeBody(decoded, &body);
  if (Crc32c(body.data()) != header_crc) {
    return Status::Corruption("codec frame: header crc mismatch");
  }
  *this = decoded;
  return Status::Ok();
}

uint32_t ChunkCrc(const std::vector<storage::Record>& rows) {
  uint32_t crc = 0;
  uint8_t buf[24];
  for (const storage::Record& row : rows) {
    // Explicit little-endian packing: byte-identical to the x86 struct
    // copy this replaced, and stable on any host.
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<uint8_t>(row.key >> (8 * i));
      buf[8 + i] = static_cast<uint8_t>(row.lsn >> (8 * i));
      buf[16 + i] = static_cast<uint8_t>(row.digest >> (8 * i));
    }
    crc = Crc32c(buf, sizeof(buf), crc);
  }
  return crc;
}

}  // namespace slacker::codec
