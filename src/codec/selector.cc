#include "src/codec/selector.h"

#include <algorithm>

namespace slacker::codec {

CodecSelector::CodecSelector(const CodecConfig& config) : config_(config) {
  // Prior from the workload model: redundancy r compresses ~1/(1 - r).
  expected_ratio_ = 1.0 / std::max(0.05, 1.0 - config_.payload_redundancy);
}

Codec CodecSelector::Choose(const SelectorInputs& inputs) const {
  const bool delta_allowed = config_.mode == CodecMode::kDelta ||
                             config_.mode == CodecMode::kAdaptive;
  if (delta_allowed && inputs.has_delta_base) return Codec::kDelta;
  switch (config_.mode) {
    case CodecMode::kRaw:
      return Codec::kRaw;
    case CodecMode::kLz:
      return Codec::kLz;
    case CodecMode::kDelta:
      // No base to delta against: ship raw rather than burn CPU on a
      // compression mode the operator did not ask for.
      return Codec::kRaw;
    case CodecMode::kAdaptive:
      break;
  }
  // Engage LZ only when the network, not CPU, is the bottleneck: spare
  // cores must be able to compress logical bytes at least
  // engage_headroom times faster than the throttle drains the
  // resulting wire bytes (wire rate * expected ratio, in logical
  // bytes/sec). Otherwise compression would stall the stream.
  const double free_cores =
      inputs.total_cores == 0
          ? 1.0
          : std::max(0.0, static_cast<double>(inputs.total_cores) -
                              inputs.busy_cores);
  const double compress_rate = config_.compress_bytes_per_sec * free_cores;
  const double drain_rate_logical =
      inputs.throttle_bytes_per_sec * expected_ratio_;
  if (compress_rate >= drain_rate_logical * config_.engage_headroom) {
    return Codec::kLz;
  }
  return Codec::kRaw;
}

void CodecSelector::ObserveRatio(double ratio) {
  if (ratio <= 0.0) return;
  expected_ratio_ = (1.0 - config_.ratio_ewma_alpha) * expected_ratio_ +
                    config_.ratio_ewma_alpha * ratio;
}

}  // namespace slacker::codec
