#include "src/codec/codec.h"

namespace slacker::codec {

const char* CodecName(Codec codec) {
  switch (codec) {
    case Codec::kRaw:
      return "raw";
    case Codec::kLz:
      return "lz";
    case Codec::kDelta:
      return "delta";
  }
  return "unknown";
}

const char* CodecModeName(CodecMode mode) {
  switch (mode) {
    case CodecMode::kRaw:
      return "raw";
    case CodecMode::kLz:
      return "lz";
    case CodecMode::kDelta:
      return "delta";
    case CodecMode::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

Status ParseCodecMode(const std::string& text, CodecMode* out) {
  if (text == "raw") {
    *out = CodecMode::kRaw;
  } else if (text == "lz") {
    *out = CodecMode::kLz;
  } else if (text == "delta") {
    *out = CodecMode::kDelta;
  } else if (text == "adaptive") {
    *out = CodecMode::kAdaptive;
  } else {
    return Status::InvalidArgument("unknown codec mode: " + text +
                                   " (expected raw|lz|delta|adaptive)");
  }
  return Status::Ok();
}

Status CodecConfig::Validate() const {
  if (payload_redundancy < 0.0 || payload_redundancy >= 1.0) {
    return Status::InvalidArgument(
        "codec.payload_redundancy must be in [0, 1)");
  }
  if (compress_bytes_per_sec <= 0.0 || decompress_bytes_per_sec <= 0.0 ||
      delta_bytes_per_sec <= 0.0) {
    return Status::InvalidArgument("codec throughput rates must be positive");
  }
  if (engage_headroom < 1.0) {
    return Status::InvalidArgument(
        "codec.engage_headroom must be >= 1 (compression may not be "
        "allowed to become the bottleneck)");
  }
  if (ratio_ewma_alpha <= 0.0 || ratio_ewma_alpha > 1.0) {
    return Status::InvalidArgument("codec.ratio_ewma_alpha must be in (0, 1]");
  }
  if (max_cached_chunks < 1) {
    return Status::InvalidArgument("codec.max_cached_chunks must be >= 1");
  }
  return Status::Ok();
}

}  // namespace slacker::codec
