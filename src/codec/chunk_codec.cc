#include "src/codec/chunk_codec.h"

#include <utility>

#include "src/codec/delta.h"
#include "src/codec/lz.h"
#include "src/codec/payload.h"
#include "src/common/checksum.h"

namespace slacker::codec {
namespace {

EncodedChunk RawChunk(const std::vector<storage::Record>& rows,
                      uint64_t logical_bytes) {
  EncodedChunk out;
  out.frame.codec = Codec::kRaw;
  out.frame.logical_bytes = logical_bytes;
  out.frame.encoded_bytes = logical_bytes;
  out.rows = rows;
  return out;
}

}  // namespace

std::vector<uint8_t> MaterializeChunkPayload(
    const std::vector<storage::Record>& rows, uint64_t record_bytes,
    double redundancy) {
  std::vector<uint8_t> payload;
  payload.reserve(rows.size() * record_bytes);
  for (const storage::Record& row : rows) {
    const std::vector<uint8_t> bytes =
        MaterializeCompressiblePayload(row, record_bytes, redundancy);
    payload.insert(payload.end(), bytes.begin(), bytes.end());
  }
  return payload;
}

EncodedChunk EncodeSnapshotChunk(
    const std::vector<storage::Record>& rows, uint64_t logical_bytes,
    Codec requested, const CodecConfig& config, uint64_t record_bytes,
    const std::vector<storage::Record>* base_rows) {
  switch (requested) {
    case Codec::kRaw:
      return RawChunk(rows, logical_bytes);
    case Codec::kLz: {
      const std::vector<uint8_t> payload = MaterializeChunkPayload(
          rows, record_bytes, config.payload_redundancy);
      const std::vector<uint8_t> compressed = LzCompress(payload);
      if (compressed.size() >= payload.size() ||
          compressed.size() >= logical_bytes) {
        return RawChunk(rows, logical_bytes);
      }
      EncodedChunk out;
      out.frame.codec = Codec::kLz;
      out.frame.logical_bytes = logical_bytes;
      out.frame.encoded_bytes = compressed.size();
      out.frame.payload_crc = Crc32c(payload);
      out.frame.payload_redundancy = config.payload_redundancy;
      out.rows = rows;
      out.cpu_seconds = static_cast<double>(payload.size()) /
                        config.compress_bytes_per_sec;
      return out;
    }
    case Codec::kDelta: {
      if (base_rows == nullptr) return RawChunk(rows, logical_bytes);
      RowDelta delta = ComputeRowDelta(*base_rows, rows);
      const uint64_t wire_bytes =
          delta.changed.size() * record_bytes + delta.removed_keys.size() * 8;
      if (wire_bytes >= logical_bytes) {
        return RawChunk(rows, logical_bytes);
      }
      EncodedChunk out;
      out.frame.codec = Codec::kDelta;
      out.frame.logical_bytes = logical_bytes;
      out.frame.encoded_bytes = wire_bytes;
      out.frame.base_crc = ChunkCrc(*base_rows);
      out.frame.payload_redundancy = config.payload_redundancy;
      out.rows = std::move(delta.changed);
      out.removed_keys = std::move(delta.removed_keys);
      out.cpu_seconds =
          static_cast<double>(logical_bytes) / config.delta_bytes_per_sec;
      return out;
    }
  }
  return RawChunk(rows, logical_bytes);
}

bool VerifyPayloadCrc(const FrameHeader& frame,
                      const std::vector<storage::Record>& rows,
                      uint64_t record_bytes) {
  if (frame.codec != Codec::kLz) return true;
  const std::vector<uint8_t> payload =
      MaterializeChunkPayload(rows, record_bytes, frame.payload_redundancy);
  return Crc32c(payload) == frame.payload_crc;
}

double DecodeCpuSeconds(const FrameHeader& frame, const CodecConfig& config) {
  switch (frame.codec) {
    case Codec::kRaw:
      return 0.0;
    case Codec::kLz:
      return static_cast<double>(frame.logical_bytes) /
             config.decompress_bytes_per_sec;
    case Codec::kDelta:
      return static_cast<double>(frame.logical_bytes) /
             config.delta_bytes_per_sec;
  }
  return 0.0;
}

}  // namespace slacker::codec
