#include "src/codec/delta.h"

#include <cstddef>

namespace slacker::codec {

RowDelta ComputeRowDelta(const std::vector<storage::Record>& base,
                         const std::vector<storage::Record>& current) {
  RowDelta delta;
  size_t b = 0;
  size_t c = 0;
  while (b < base.size() && c < current.size()) {
    if (base[b].key < current[c].key) {
      delta.removed_keys.push_back(base[b].key);
      ++b;
    } else if (current[c].key < base[b].key) {
      delta.changed.push_back(current[c]);
      ++c;
    } else {
      if (!(base[b] == current[c])) delta.changed.push_back(current[c]);
      ++b;
      ++c;
    }
  }
  for (; b < base.size(); ++b) delta.removed_keys.push_back(base[b].key);
  for (; c < current.size(); ++c) delta.changed.push_back(current[c]);
  return delta;
}

std::vector<storage::Record> ApplyRowDelta(
    const std::vector<storage::Record>& base,
    const std::vector<storage::Record>& changed,
    const std::vector<uint64_t>& removed_keys) {
  std::vector<storage::Record> out;
  out.reserve(base.size() + changed.size());
  size_t b = 0;
  size_t c = 0;
  size_t r = 0;
  auto removed = [&](uint64_t key) {
    while (r < removed_keys.size() && removed_keys[r] < key) ++r;
    return r < removed_keys.size() && removed_keys[r] == key;
  };
  while (b < base.size() || c < changed.size()) {
    if (c >= changed.size() ||
        (b < base.size() && base[b].key < changed[c].key)) {
      if (!removed(base[b].key)) out.push_back(base[b]);
      ++b;
    } else {
      // A changed row replaces the base version of the same key.
      if (b < base.size() && base[b].key == changed[c].key) ++b;
      out.push_back(changed[c]);
      ++c;
    }
  }
  return out;
}

}  // namespace slacker::codec
