#ifndef SLACKER_CODEC_PAYLOAD_H_
#define SLACKER_CODEC_PAYLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/storage/record.h"

namespace slacker::codec {

/// Expands a record into `logical_size` deterministic bytes with a
/// controllable compressible fraction: the first
/// round(redundancy * logical_size) bytes are a constant filler byte
/// derived from the key (LZ folds them into a handful of matches), and
/// the remainder is the same incompressible xorshift64 stream
/// storage::MaterializePayload produces. redundancy = 0 degenerates to
/// pure noise; the achievable LZ ratio is ~1 / (1 - redundancy).
///
/// Source and target call this with identical (record, size,
/// redundancy) inputs, so a payload CRC computed on one side is
/// verifiable on the other without shipping the bytes.
std::vector<uint8_t> MaterializeCompressiblePayload(
    const storage::Record& record, size_t logical_size, double redundancy);

}  // namespace slacker::codec

#endif  // SLACKER_CODEC_PAYLOAD_H_
