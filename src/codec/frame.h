#ifndef SLACKER_CODEC_FRAME_H_
#define SLACKER_CODEC_FRAME_H_

#include <cstdint>
#include <vector>

#include "src/codec/codec.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/storage/record.h"

namespace slacker::codec {

/// First byte of the encoded frame extension. Message decoders peek it
/// to dispatch among trailing extensions (the negotiation extension
/// uses 0xC6).
inline constexpr uint8_t kCodecFrameMagic = 0xC5;

/// Self-describing, checksummed header for one encoded snapshot/delta
/// chunk. Wraps the chunk-level metadata the target needs to decode,
/// verify, and account the chunk: which codec produced it, its logical
/// and wire sizes, a CRC over the (materialized) payload bytes, and —
/// for delta frames — a CRC identifying the base chunk the delta was
/// computed against.
///
/// Wire layout (appended to a net::Message only when codec != kRaw, so
/// the default raw path stays byte-identical to the pre-codec wire):
///
///   magic       u8      0xC5
///   version     u8      1
///   codec       u8      Codec enum value
///   logical     varint  bytes of decoded payload (progress accounting)
///   encoded     varint  bytes actually metered through the throttle
///   payload_crc fixed32 CRC-32C of the full materialized payload
///   base_crc    fixed32 kDelta: ChunkCrc of the base rows; else 0
///   redundancy  double  payload_redundancy the source materialized with
///   header_crc  fixed32 CRC-32C over all preceding header bytes
///
/// The simulator ships row triples, not payload bytes, so `encoded` is
/// the *modeled* wire size: the source runs the real LZ compressor over
/// the materialized payload to measure it, and the target re-derives
/// the same payload from (rows, redundancy, record_bytes) to verify
/// payload_crc end to end without the bytes ever crossing the link.
struct FrameHeader {
  Codec codec = Codec::kRaw;
  uint64_t logical_bytes = 0;
  uint64_t encoded_bytes = 0;
  uint32_t payload_crc = 0;
  /// kDelta only: ChunkCrc of the base rows the delta applies to. The
  /// target refuses to apply a delta whose base it does not hold.
  uint32_t base_crc = 0;
  double payload_redundancy = 0.0;

  bool operator==(const FrameHeader& other) const = default;

  void EncodeTo(ByteWriter* writer) const;
  Status DecodeFrom(ByteReader* reader);
};

/// CRC-32C over a chunk's packed (key, lsn, digest) triples — the
/// end-to-end integrity check the target uses to NACK corrupt chunks.
/// Packing is explicit little-endian so the digest is platform-stable.
uint32_t ChunkCrc(const std::vector<storage::Record>& rows);

}  // namespace slacker::codec

#endif  // SLACKER_CODEC_FRAME_H_
