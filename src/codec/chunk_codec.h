#ifndef SLACKER_CODEC_CHUNK_CODEC_H_
#define SLACKER_CODEC_CHUNK_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/codec/codec.h"
#include "src/codec/frame.h"
#include "src/storage/record.h"

namespace slacker::codec {

/// One snapshot/delta chunk after encoding: the frame header that ships
/// with it, the rows to put on the wire (for kDelta, only the changed
/// rows), the removed keys (kDelta only), and the modeled source-side
/// CPU cost of producing it.
struct EncodedChunk {
  FrameHeader frame;
  std::vector<storage::Record> rows;
  std::vector<uint64_t> removed_keys;
  double cpu_seconds = 0.0;
};

/// Concatenated materialized payload of a chunk: `record_bytes` bytes
/// per row via MaterializeCompressiblePayload. Source and target derive
/// identical bytes from identical rows, which is what lets payload CRCs
/// verify end to end without payload bytes crossing the link.
std::vector<uint8_t> MaterializeChunkPayload(
    const std::vector<storage::Record>& rows, uint64_t record_bytes,
    double redundancy);

/// Encodes one chunk with `requested` codec. Falls back to kRaw when
/// the encoding does not pay (LZ output >= input; delta >= full chunk)
/// or when kDelta was requested without a base. For kLz the real block
/// compressor runs over the materialized payload to measure
/// encoded_bytes and payload_crc; for kDelta the wire size is modeled
/// as changed rows plus 8 bytes per removed key.
EncodedChunk EncodeSnapshotChunk(const std::vector<storage::Record>& rows,
                                 uint64_t logical_bytes, Codec requested,
                                 const CodecConfig& config,
                                 uint64_t record_bytes,
                                 const std::vector<storage::Record>* base_rows);

/// Target-side check that an LZ frame's payload CRC matches the payload
/// re-materialized from the received rows. True for non-LZ frames.
bool VerifyPayloadCrc(const FrameHeader& frame,
                      const std::vector<storage::Record>& rows,
                      uint64_t record_bytes);

/// Modeled target-side CPU seconds to decode/verify a frame.
double DecodeCpuSeconds(const FrameHeader& frame, const CodecConfig& config);

}  // namespace slacker::codec

#endif  // SLACKER_CODEC_CHUNK_CODEC_H_
