#ifndef SLACKER_CODEC_DELTA_H_
#define SLACKER_CODEC_DELTA_H_

#include <cstdint>
#include <vector>

#include "src/storage/record.h"

namespace slacker::codec {

/// Row-level delta between two versions of the same key range: the
/// rows that changed (or appeared) plus the keys that vanished. Used
/// for go-back-N retransmission — a NACK-free re-send of a chunk the
/// target already durably staged only needs to carry what mutated
/// between the two reads.
struct RowDelta {
  /// Rows present in `current` that are absent from or differ in
  /// `base`, in key order.
  std::vector<storage::Record> changed;
  /// Keys present in `base` but absent from `current`, in key order.
  std::vector<uint64_t> removed_keys;

  bool empty() const { return changed.empty() && removed_keys.empty(); }
};

/// Computes the delta that transforms `base` into `current`. Both
/// inputs must be sorted by key (HotBackupStream chunks always are).
RowDelta ComputeRowDelta(const std::vector<storage::Record>& base,
                         const std::vector<storage::Record>& current);

/// Applies a delta to `base`, returning the reconstructed rows in key
/// order. ApplyRowDelta(base, ComputeRowDelta(base, current)) ==
/// current for any sorted inputs.
std::vector<storage::Record> ApplyRowDelta(
    const std::vector<storage::Record>& base,
    const std::vector<storage::Record>& changed,
    const std::vector<uint64_t>& removed_keys);

}  // namespace slacker::codec

#endif  // SLACKER_CODEC_DELTA_H_
