#include "src/codec/lz.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace slacker::codec {
namespace {

constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = size_t{1} << kHashBits;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 131;  // kMinMatch + 127.
constexpr size_t kMaxLiteralRun = 128;

/// Fibonacci hash of a 4-byte little-endian prefix; determinism needs
/// only that this is a pure function of the bytes.
uint32_t HashPrefix(const uint8_t* p) {
  const uint32_t word = static_cast<uint32_t>(p[0]) |
                        (static_cast<uint32_t>(p[1]) << 8) |
                        (static_cast<uint32_t>(p[2]) << 16) |
                        (static_cast<uint32_t>(p[3]) << 24);
  return (word * 2654435761u) >> (32 - kHashBits);
}

void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

bool GetVarint(const std::vector<uint8_t>& in, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < in.size() && shift < 64) {
    const uint8_t byte = in[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

void FlushLiterals(const std::vector<uint8_t>& input, size_t from, size_t to,
                   std::vector<uint8_t>* out) {
  while (from < to) {
    const size_t run = std::min(kMaxLiteralRun, to - from);
    out->push_back(static_cast<uint8_t>(run - 1));
    out->insert(out->end(), input.begin() + static_cast<ptrdiff_t>(from),
                input.begin() + static_cast<ptrdiff_t>(from + run));
    from += run;
  }
}

}  // namespace

std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> out;
  const size_t n = input.size();
  if (n == 0) return out;
  out.reserve(n / 2 + 16);

  std::vector<size_t> table(kHashSize, SIZE_MAX);
  size_t literal_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = HashPrefix(&input[i]);
    const size_t candidate = table[h];
    table[h] = i;
    if (candidate != SIZE_MAX && candidate < i &&
        input[candidate] == input[i] && input[candidate + 1] == input[i + 1] &&
        input[candidate + 2] == input[i + 2] &&
        input[candidate + 3] == input[i + 3]) {
      size_t length = kMinMatch;
      const size_t limit = std::min(kMaxMatch, n - i);
      while (length < limit && input[candidate + length] == input[i + length]) {
        ++length;
      }
      FlushLiterals(input, literal_start, i, &out);
      out.push_back(static_cast<uint8_t>(0x80 | (length - kMinMatch)));
      PutVarint(&out, i - candidate);
      i += length;
      literal_start = i;
    } else {
      ++i;
    }
  }
  FlushLiterals(input, literal_start, n, &out);
  return out;
}

Status LzDecompress(const std::vector<uint8_t>& compressed,
                    size_t expected_size, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(expected_size);
  size_t pos = 0;
  while (pos < compressed.size()) {
    const uint8_t op = compressed[pos++];
    if (op < 0x80) {
      const size_t run = static_cast<size_t>(op) + 1;
      if (pos + run > compressed.size()) {
        return Status::Corruption("lz literal run overruns input");
      }
      if (out->size() + run > expected_size) {
        return Status::Corruption("lz output exceeds expected size");
      }
      out->insert(out->end(), compressed.begin() + static_cast<ptrdiff_t>(pos),
                  compressed.begin() + static_cast<ptrdiff_t>(pos + run));
      pos += run;
    } else {
      uint64_t distance = 0;
      if (!GetVarint(compressed, &pos, &distance)) {
        return Status::Corruption("lz match distance truncated");
      }
      const size_t length = static_cast<size_t>(op & 0x7F) + kMinMatch;
      if (distance == 0 || distance > out->size()) {
        return Status::Corruption("lz match distance out of range");
      }
      if (out->size() + length > expected_size) {
        return Status::Corruption("lz output exceeds expected size");
      }
      // Byte-at-a-time: matches may overlap their own output (RLE).
      size_t src = out->size() - static_cast<size_t>(distance);
      for (size_t k = 0; k < length; ++k) {
        out->push_back((*out)[src + k]);
      }
    }
  }
  if (out->size() != expected_size) {
    return Status::Corruption("lz output shorter than expected size");
  }
  return Status::Ok();
}

}  // namespace slacker::codec
