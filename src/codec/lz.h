#ifndef SLACKER_CODEC_LZ_H_
#define SLACKER_CODEC_LZ_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace slacker::codec {

/// Deterministic LZ77-style block compressor (LZ4 spirit, reduced to
/// what the simulator needs). Greedy single-candidate matching over a
/// fixed-size hash table, pure integer arithmetic — the output depends
/// only on the input bytes, never on host, library version, or hash
/// seed, so compressed sizes are bit-reproducible across runs.
///
/// Token stream format:
///   op byte 0x00..0x7F : literal run; (op + 1) literal bytes follow.
///   op byte 0x80 | x   : match; varint-encoded distance follows,
///                        match length = x + 4 (4..131 bytes).
///
/// The compressor never expands pathologically: worst case is
/// ceil(n / 128) op bytes of overhead. Callers compare the result size
/// against the input and ship raw when compression does not pay.
std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& input);

/// Decompresses `compressed` into `out` (cleared first). Fails with
/// Corruption if the token stream is malformed or does not decode to
/// exactly `expected_size` bytes.
Status LzDecompress(const std::vector<uint8_t>& compressed,
                    size_t expected_size, std::vector<uint8_t>* out);

}  // namespace slacker::codec

#endif  // SLACKER_CODEC_LZ_H_
