#ifndef SLACKER_ENGINE_TENANT_DB_H_
#define SLACKER_ENGINE_TENANT_DB_H_

#include <cstdint>
#include <deque>
#include <map>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "src/common/metric_types.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/engine/tenant_config.h"
#include "src/resource/cpu.h"
#include "src/resource/disk.h"
#include "src/sim/simulator.h"
#include "src/storage/btree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/data_directory.h"
#include "src/wal/binlog.h"

namespace slacker::engine {

/// A single query operation (one step of a YCSB transaction).
enum class OpType { kRead, kUpdate, kInsert, kDelete, kScan };

struct Operation {
  OpType type = OpType::kRead;
  uint64_t key = 0;
  /// kScan: number of consecutive rows to read starting at `key`
  /// (YCSB workload E's SCAN operation).
  uint64_t scan_length = 0;
};

/// Row image returned for write operations so clients can verify
/// end-to-end durability across a migration.
struct WrittenRow {
  uint64_t key = 0;
  storage::Lsn lsn = 0;
  uint64_t digest = 0;  // 0 for deletes.
  bool deleted = false;
};

/// One tenant's database instance: the mysqld-per-tenant analog from
/// §2.2. Owns the clustered table (B+-tree), an LRU buffer pool, and
/// the binlog. Operations execute *functionally* inline (real reads and
/// writes against the tree) while their *time* is charged to the
/// server's shared disk and CPU via the simulator — so both data
/// correctness and latency behaviour are first-class.
class TenantDb {
 public:
  using OpCallback = std::function<void(Status, const WrittenRow&)>;

  /// Process-level multitenancy (§2.1, the paper's model): this
  /// instance owns a dedicated buffer pool sized by
  /// config.buffer_pool_bytes.
  TenantDb(sim::Simulator* sim, resource::DiskModel* disk,
           resource::CpuModel* cpu, TenantConfig config);

  /// Shared-process multitenancy (§6/§8 extension — "one MySQL daemon
  /// handling all tenants"): page accesses go through `shared_pool`,
  /// which other tenants on the server also use. Page ids are
  /// namespaced by tenant, but *capacity* is contended — a hot
  /// neighbour evicts this tenant's pages, the interference the paper's
  /// process-level choice avoids. `shared_pool` must outlive this.
  TenantDb(sim::Simulator* sim, resource::DiskModel* disk,
           resource::CpuModel* cpu, TenantConfig config,
           storage::BufferPool* shared_pool);

  TenantDb(const TenantDb&) = delete;
  TenantDb& operator=(const TenantDb&) = delete;

  ~TenantDb() { *alive_ = false; }

  /// Pre-populates layout.record_count rows (LSN 0) and marks the
  /// buffer pool cold. Instantaneous in simulated time (the paper
  /// pre-populates before measuring, too).
  void Load();

  /// Fills the buffer pool to capacity with (clean) resident pages —
  /// the steady state a long-running tenant reaches, so experiments
  /// measure equilibrium hit rates instead of a cold-start transient.
  void WarmBufferPool();

  /// Executes one operation; `done` fires when its CPU and I/O are
  /// complete. While frozen, operations queue and wait (global read
  /// lock semantics).
  void ExecuteOp(const Operation& op, OpCallback done);

  /// Appends the transaction commit record and charges the group-commit
  /// latency; `done` fires when the commit is durable.
  void Commit(uint64_t txn_id, std::function<void()> done);

  /// Stops admitting operations; `drained` fires once in-flight work
  /// completes (the freeze step of handover / stop-and-copy).
  void Freeze(std::function<void()> drained);
  void Unfreeze();
  /// Fails every operation queued behind the freeze with kUnavailable —
  /// used after handover when this replica stops being authoritative
  /// (clients re-resolve and retry at the target).
  void FailQueued();

  // --- Range-scoped freeze (fluid migration, DESIGN.md §16) ---------
  /// Stops admitting operations touching keys in [lo, hi) only; other
  /// keys keep executing. `drained` fires once every in-flight
  /// operation that overlaps the range completes — the per-range
  /// freeze window, orders of magnitude shorter than a whole-tenant
  /// freeze. One range freeze at a time; bounds are raw integers so
  /// the engine stays below the range module in the layer DAG.
  void FreezeRange(uint64_t lo, uint64_t hi, std::function<void()> drained);
  /// Re-admits operations queued behind the range freeze, in order.
  void UnfreezeRange();
  /// Fails operations queued behind the range freeze with kUnavailable
  /// (the range handed over; clients re-resolve to the new owner) and
  /// lifts the freeze for future out-of-range admissions.
  void FailRangeQueued();
  bool range_frozen() const { return range_frozen_; }
  /// Crash semantics: fails every *in-flight* operation (those already
  /// inside the CPU/disk pipeline) and everything queued behind a
  /// freeze with `status`. Late resource completions for those ops
  /// become no-ops. Call before destroying the instance on a simulated
  /// server crash so client callbacks fire instead of leaking.
  void FailInFlight(const Status& status);
  bool frozen() const { return frozen_; }

  /// Direct (non-simulated) access for backup/replication machinery.
  const storage::BTree& table() const { return table_; }
  storage::BTree* mutable_table() { return &table_; }
  wal::Binlog* binlog() { return &binlog_; }
  const wal::Binlog& binlog() const { return binlog_; }
  /// The pool page accesses go through (dedicated or shared).
  storage::BufferPool* buffer_pool() { return pool_; }
  bool uses_shared_pool() const { return pool_ != &own_pool_; }

  /// Charges a bulk sequential read of `bytes` against this tenant's
  /// disk as stream `stream_id` (used by the hot-backup streamer).
  void ChargeSequentialRead(uint64_t bytes, uint64_t stream_id,
                            std::function<void()> done);
  void ChargeSequentialWrite(uint64_t bytes, uint64_t stream_id,
                             std::function<void()> done);
  /// Charges CPU work (backup prepare / delta apply).
  void ChargeCpu(SimTime service, std::function<void()> done);

  const TenantConfig& config() const { return config_; }
  storage::Lsn last_lsn() const { return binlog_.last_lsn(); }

  /// Installs the durable binlog a restarted server salvaged from disk,
  /// and fast-forwards the LSN/insert cursors past it. The table must
  /// already reflect the recovered state (checkpoint load + replay).
  void RestoreBinlog(wal::Binlog log);

  /// Fast-forwards the LSN and insert-key cursors after this instance
  /// ingests migrated state, so post-handover writes continue the
  /// source's sequences instead of colliding with them.
  void SyncCursorsAfterIngest(storage::Lsn source_last_lsn);

  /// Binlog retention. A migration pins the log at its snapshot-start
  /// LSN so delta rounds can always read their range; purges only
  /// discard entries below every pin. Returns a token for UnpinBinlog.
  int PinBinlog(storage::Lsn from_lsn);
  void UnpinBinlog(int token);
  /// Discards binlog entries with lsn < min(upto, lowest pin). Returns
  /// the first LSN actually retained.
  storage::Lsn PurgeBinlog(storage::Lsn upto);

  /// Order-sensitive digest over (key, lsn, digest) of every row; equal
  /// digests mean byte-identical logical tables.
  uint64_t StateDigest() const;

  /// Logical bytes of table data (what a migration must copy).
  uint64_t DataBytes() const;
  /// Current data-directory inventory (table data + binlog).
  storage::DataDirectory Directory() const;

  /// Order-sensitive digest over rows with key in [lo, hi) only —
  /// what source and target compare at a per-range handover.
  uint64_t StateDigestRange(uint64_t lo, uint64_t hi) const;
  /// Rows currently stored with key in [lo, hi).
  uint64_t RowsInRange(uint64_t lo, uint64_t hi) const;
  /// Logical bytes a migration of [lo, hi) must copy.
  uint64_t DataBytesRange(uint64_t lo, uint64_t hi) const;
  /// Drops every row with key in [lo, hi) without logging (the range
  /// handed over; those rows now live on the new owner). Returns the
  /// number of rows dropped.
  uint64_t EraseRangeRows(uint64_t lo, uint64_t hi);

  uint64_t ops_executed() const { return ops_executed_; }
  size_t queued_ops() const { return frozen_queue_.size(); }
  size_t range_queued_ops() const { return range_frozen_queue_.size(); }
  int in_flight() const { return in_flight_; }

  /// Hooks engine-level metrics into an observability registry: every
  /// completed operation observes its start-to-finish latency (ms) and
  /// bumps the op counter. Pass nullptrs to detach. Off (no per-op
  /// bookkeeping at all) unless attached.
  void AttachObs(common::Histogram* op_latency_ms, common::Counter* ops);

 private:
  struct PendingOp {
    Operation op;
    OpCallback done;
  };

  struct PendingDone {
    Operation op;
    OpCallback done;
  };

  void StartOp(const Operation& op, OpCallback done);
  void StartScan(const Operation& op, uint64_t token);
  void ScanNextPage(uint64_t page, uint64_t last_page, Operation op,
                    uint64_t token);
  void FinishOp(const Operation& op, uint64_t token);
  /// Registers an in-flight op's callback; FinishOp/FailInFlight claim
  /// it exactly once by token.
  uint64_t RegisterOp(const Operation& op, OpCallback done);
  WrittenRow ApplyWrite(const Operation& op);
  void MaybeNotifyDrained();
  void MaybeNotifyRangeDrained();
  /// Whether `op` reads or writes a key inside the frozen range (an
  /// insert touches it iff the next insert key would land there).
  bool TouchesFrozenRange(const Operation& op) const;
  /// Pool-namespace id for this tenant's `page` (distinct across
  /// tenants sharing one pool).
  uint64_t PoolPageId(uint64_t page) const;

  sim::Simulator* sim_;
  resource::DiskModel* disk_;
  resource::CpuModel* cpu_;
  TenantConfig config_;

  storage::BTree table_;
  storage::BufferPool own_pool_;
  storage::BufferPool* pool_;  // == &own_pool_ unless shared.
  wal::Binlog binlog_;
  storage::Lsn next_lsn_ = 1;
  uint64_t next_insert_key_;

  std::map<int, storage::Lsn> binlog_pins_;
  int next_pin_token_ = 1;

  bool frozen_ = false;
  std::deque<PendingOp> frozen_queue_;
  int in_flight_ = 0;
  std::vector<std::function<void()>> drain_waiters_;
  uint64_t ops_executed_ = 0;

  /// Range freeze (fluid migration): only ops touching [range_lo_,
  /// range_hi_) queue; the drain waits on exactly the in-flight tokens
  /// that overlapped the range at freeze time.
  bool range_frozen_ = false;
  uint64_t range_lo_ = 0;
  uint64_t range_hi_ = 0;
  std::deque<PendingOp> range_frozen_queue_;
  std::set<uint64_t> range_draining_tokens_;
  std::vector<std::function<void()>> range_drain_waiters_;

  uint64_t next_op_token_ = 1;
  std::map<uint64_t, PendingDone> pending_done_;
  /// Observability (inert unless AttachObs was called).
  common::Histogram* op_latency_hist_ = nullptr;
  common::Counter* ops_counter_ = nullptr;
  std::map<uint64_t, SimTime> op_start_;
  /// Expires when the instance is destroyed (server crash / tenant
  /// delete); continuations routed through the shared disk/CPU check it
  /// before touching `this`, so a crash can destroy the db while its
  /// I/O is still queued.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace slacker::engine

#endif  // SLACKER_ENGINE_TENANT_DB_H_
