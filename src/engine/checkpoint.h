#ifndef SLACKER_ENGINE_CHECKPOINT_H_
#define SLACKER_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/engine/tenant_db.h"
#include "src/storage/record.h"
#include "src/wal/binlog.h"

namespace slacker::engine {

/// A consistent point-in-time image of a tenant's table, the unit of
/// local durability: a crash loses everything after `lsn` unless it is
/// in the binlog, and recovery = load image + replay binlog suffix.
/// (Live migration uses the streaming HotBackup instead; checkpoints
/// serve restart-after-crash and binlog retention.)
struct CheckpointImage {
  uint64_t tenant_id = 0;
  /// All committed row changes with lsn <= this are reflected.
  storage::Lsn lsn = 0;
  std::vector<storage::Record> rows;
  /// Digest of the rows (order-sensitive), for integrity checking.
  uint64_t digest = 0;

  /// Logical size (what writing this checkpoint to disk costs).
  uint64_t LogicalBytes(uint64_t record_bytes) const {
    return rows.size() * record_bytes;
  }
};

/// Captures a checkpoint of `db` at its current LSN. The tenant must be
/// quiesced by the caller (frozen, or known-idle) — a fuzzy checkpoint
/// is exactly what HotBackupStream provides instead.
CheckpointImage TakeCheckpoint(const TenantDb& db);

/// Verifies the image's digest. kCorruption on mismatch.
Status ValidateCheckpoint(const CheckpointImage& image);

/// Rebuilds `db`'s table from `image` plus the binlog suffix
/// (lsn > image.lsn) read from `log`. Returns the LSN recovered up to.
/// Fails if the log no longer retains the needed suffix (purged past
/// the checkpoint) or the image is corrupt.
Result<storage::Lsn> RecoverFromCheckpoint(const CheckpointImage& image,
                                           const wal::Binlog& log,
                                           TenantDb* db);

/// Digest helper shared by Take/Validate.
uint64_t CheckpointDigest(const std::vector<storage::Record>& rows);

}  // namespace slacker::engine

#endif  // SLACKER_ENGINE_CHECKPOINT_H_
