#ifndef SLACKER_ENGINE_TENANT_CONFIG_H_
#define SLACKER_ENGINE_TENANT_CONFIG_H_

#include <cstdint>

#include "src/common/units.h"
#include "src/storage/tablespace.h"

namespace slacker::engine {

/// Static configuration of one tenant database (the my.cnf analog).
struct TenantConfig {
  uint64_t tenant_id = 0;

  /// Table geometry. Default: 1 GiB of 1 KiB rows in 16 KiB pages.
  storage::TablespaceLayout layout;

  /// Buffer pool size in bytes. The paper's evaluation pins this to
  /// 128 MB to force disk activity against the 1 GB tenant.
  uint64_t buffer_pool_bytes = 128 * kMiB;

  /// CPU time charged per query operation (parse/plan/execute of one
  /// basic SELECT/UPDATE against an indexed row).
  SimTime cpu_per_op = 0.0003;

  /// Commit path latency (binlog group-commit flush). Charged once per
  /// transaction; the binlog is assumed to live on the log device so it
  /// does not queue behind data-page I/O.
  SimTime commit_latency = 0.0005;

  /// Seed for deterministic row contents.
  uint64_t value_seed = 1;

  /// Port is a fixed function of the tenant id (§2.2).
  int Port() const { return 34000 + static_cast<int>(tenant_id % 1000); }

  uint64_t BufferPoolPages() const {
    return buffer_pool_bytes / layout.page_bytes;
  }
};

}  // namespace slacker::engine

#endif  // SLACKER_ENGINE_TENANT_CONFIG_H_
