#include "src/engine/checkpoint.h"

#include "src/common/checksum.h"
#include "src/wal/recovery.h"

namespace slacker::engine {

uint64_t CheckpointDigest(const std::vector<storage::Record>& rows) {
  uint64_t digest = 0xcbf29ce484222325ULL;
  for (const storage::Record& r : rows) {
    digest = HashCombine(digest, r.key);
    digest = HashCombine(digest, r.lsn);
    digest = HashCombine(digest, r.digest);
  }
  return digest;
}

CheckpointImage TakeCheckpoint(const TenantDb& db) {
  CheckpointImage image;
  image.tenant_id = db.config().tenant_id;
  image.lsn = db.last_lsn();
  image.rows.reserve(db.table().size());
  for (auto it = db.table().Begin(); it.Valid(); it.Next()) {
    image.rows.push_back(it.record());
  }
  image.digest = CheckpointDigest(image.rows);
  return image;
}

Status ValidateCheckpoint(const CheckpointImage& image) {
  if (CheckpointDigest(image.rows) != image.digest) {
    return Status::Corruption("checkpoint digest mismatch for tenant " +
                              std::to_string(image.tenant_id));
  }
  return Status::Ok();
}

Result<storage::Lsn> RecoverFromCheckpoint(const CheckpointImage& image,
                                           const wal::Binlog& log,
                                           TenantDb* db) {
  SLACKER_RETURN_IF_ERROR(ValidateCheckpoint(image));
  if (image.tenant_id != db->config().tenant_id) {
    return Status::InvalidArgument("checkpoint belongs to another tenant");
  }
  // The log must retain everything after the checkpoint.
  if (log.first_lsn() > image.lsn + 1) {
    return Status::FailedPrecondition(
        "binlog purged past the checkpoint; cannot recover");
  }
  storage::BTree* table = db->mutable_table();
  table->Clear();
  for (const storage::Record& r : image.rows) table->Put(r);

  std::vector<wal::LogRecord> suffix;
  SLACKER_RETURN_IF_ERROR(
      log.ReadRange(image.lsn + 1, log.last_lsn(), &suffix));
  SLACKER_RETURN_IF_ERROR(wal::Replay(suffix, table));
  const storage::Lsn recovered =
      suffix.empty() ? image.lsn : suffix.back().lsn;
  db->SyncCursorsAfterIngest(recovered);
  return recovered;
}

}  // namespace slacker::engine
