#include "src/engine/tenant_db.h"

#include <algorithm>

#include <utility>

#include "src/common/checksum.h"
#include "src/common/invariant.h"
#include "src/storage/record.h"

namespace slacker::engine {

TenantDb::TenantDb(sim::Simulator* sim, resource::DiskModel* disk,
                   resource::CpuModel* cpu, TenantConfig config)
    : sim_(sim),
      disk_(disk),
      cpu_(cpu),
      config_(config),
      own_pool_(storage::BufferPoolOptions{config.BufferPoolPages()}),
      pool_(&own_pool_),
      next_insert_key_(config.layout.record_count) {}

TenantDb::TenantDb(sim::Simulator* sim, resource::DiskModel* disk,
                   resource::CpuModel* cpu, TenantConfig config,
                   storage::BufferPool* shared_pool)
    : sim_(sim),
      disk_(disk),
      cpu_(cpu),
      config_(config),
      own_pool_(storage::BufferPoolOptions{0}),
      pool_(shared_pool),
      next_insert_key_(config.layout.record_count) {}

uint64_t TenantDb::PoolPageId(uint64_t page) const {
  // Namespacing only matters when the pool is shared; harmless always.
  return (config_.tenant_id << 40) | page;
}

void TenantDb::Load() {
  table_.Clear();
  if (!uses_shared_pool()) pool_->Clear();
  for (uint64_t key = 0; key < config_.layout.record_count; ++key) {
    table_.Put(storage::Record{
        key, 0, storage::RowDigest(key, 0, config_.value_seed)});
  }
}

void TenantDb::ExecuteOp(const Operation& op, OpCallback done) {
  if (frozen_) {
    frozen_queue_.push_back(PendingOp{op, std::move(done)});
    return;
  }
  if (range_frozen_ && TouchesFrozenRange(op)) {
    range_frozen_queue_.push_back(PendingOp{op, std::move(done)});
    return;
  }
  StartOp(op, std::move(done));
}

bool TenantDb::TouchesFrozenRange(const Operation& op) const {
  if (op.type == OpType::kInsert) {
    // Inserts land at the next insert cursor, not op.key.
    return next_insert_key_ >= range_lo_ && next_insert_key_ < range_hi_;
  }
  if (op.type == OpType::kScan) {
    const uint64_t len = std::max<uint64_t>(op.scan_length, 1);
    const uint64_t end =
        len > UINT64_MAX - op.key ? UINT64_MAX : op.key + len;
    return op.key < range_hi_ && end > range_lo_;
  }
  return op.key >= range_lo_ && op.key < range_hi_;
}

uint64_t TenantDb::RegisterOp(const Operation& op, OpCallback done) {
  const uint64_t token = next_op_token_++;
  pending_done_[token] = PendingDone{op, std::move(done)};
  if (op_latency_hist_ != nullptr) op_start_[token] = sim_->Now();
  return token;
}

void TenantDb::AttachObs(common::Histogram* op_latency_ms,
                         common::Counter* ops) {
  op_latency_hist_ = op_latency_ms;
  ops_counter_ = ops;
  if (op_latency_hist_ == nullptr) op_start_.clear();
}

void TenantDb::StartOp(const Operation& op, OpCallback done) {
  if (op.type == OpType::kScan) {
    ++in_flight_;
    StartScan(op, RegisterOp(op, std::move(done)));
    return;
  }
  ++in_flight_;
  const uint64_t token = RegisterOp(op, std::move(done));
  // Stage 1: CPU (parse/plan/execute). Continuations are guarded by
  // alive_: a server crash destroys the instance while its work is
  // still queued on the shared disk/CPU.
  cpu_->Submit(config_.cpu_per_op,
               [this, op, token, alive = std::weak_ptr<bool>(alive_)] {
    if (alive.expired()) return;
    // Stage 2: page access through the buffer pool.
    const bool is_write = op.type != OpType::kRead;
    const uint64_t page = PoolPageId(config_.layout.PageOf(op.key));
    const storage::PageAccess access = pool_->Touch(page, is_write);
    if (access.evicted_dirty) {
      // Background write-back of the victim page; nobody waits on it,
      // but it does occupy the shared disk.
      disk_->Submit(resource::IoKind::kRandomWrite, config_.layout.page_bytes,
                    nullptr, config_.tenant_id);
    }
    if (access.hit) {
      FinishOp(op, token);
      return;
    }
    // Stage 3: synchronous page read on miss.
    disk_->Submit(resource::IoKind::kRandomRead, config_.layout.page_bytes,
                  [this, op, token, alive] {
                    if (!alive.expired()) FinishOp(op, token);
                  },
                  config_.tenant_id);
  });
}

void TenantDb::StartScan(const Operation& op, uint64_t token) {
  const uint64_t length = std::max<uint64_t>(op.scan_length, 1);
  const uint64_t first_page = config_.layout.PageOf(op.key);
  const uint64_t last_key = op.key + length - 1;
  const uint64_t last_page =
      std::min(config_.layout.PageOf(last_key),
               config_.layout.TotalPages() == 0
                   ? first_page
                   : config_.layout.TotalPages() - 1);
  // One planning charge, then the pages stream in order; each page is
  // a buffer-pool touch and, on a miss, a sequential read (consecutive
  // pages of one scan keep the head position via the tenant stream id).
  cpu_->Submit(config_.cpu_per_op,
               [this, first_page, last_page, op, token,
                alive = std::weak_ptr<bool>(alive_)] {
                 if (!alive.expired()) {
                   ScanNextPage(first_page, last_page, op, token);
                 }
               });
}

void TenantDb::ScanNextPage(uint64_t page, uint64_t last_page, Operation op,
                            uint64_t token) {
  if (page > last_page) {
    // Functional read of the range (counts rows; values are digests).
    uint64_t seen = 0;
    for (auto it = table_.Seek(op.key);
         it.Valid() && seen < std::max<uint64_t>(op.scan_length, 1);
         it.Next()) {
      ++seen;
    }
    FinishOp(op, token);
    return;
  }
  const storage::PageAccess access =
      pool_->Touch(PoolPageId(page), /*make_dirty=*/false);
  if (access.evicted_dirty) {
    disk_->Submit(resource::IoKind::kRandomWrite, config_.layout.page_bytes,
                  nullptr, config_.tenant_id);
  }
  if (access.hit) {
    ScanNextPage(page + 1, last_page, op, token);
    return;
  }
  disk_->Submit(resource::IoKind::kSequentialRead, config_.layout.page_bytes,
                [this, page, last_page, op, token,
                 alive = std::weak_ptr<bool>(alive_)] {
                  if (!alive.expired()) {
                    ScanNextPage(page + 1, last_page, op, token);
                  }
                },
                config_.tenant_id);
}

void TenantDb::FinishOp(const Operation& op, uint64_t token) {
  auto it = pending_done_.find(token);
  if (it == pending_done_.end()) return;  // Claimed by FailInFlight.
  OpCallback done = std::move(it->second.done);
  pending_done_.erase(it);
  if (range_frozen_ && range_draining_tokens_.erase(token) > 0) {
    MaybeNotifyRangeDrained();
  }
  if (op_latency_hist_ != nullptr) {
    auto start = op_start_.find(token);
    if (start != op_start_.end()) {
      op_latency_hist_->Observe(MsFromSeconds(sim_->Now() - start->second));
      op_start_.erase(start);
    }
  }
  if (ops_counter_ != nullptr) ops_counter_->Add();
  WrittenRow written;
  Status status = Status::Ok();
  if (op.type == OpType::kRead) {
    // Point lookup; absent keys are a successful empty read (YCSB keys
    // are drawn from the loaded range, but deletes can create misses).
    (void)table_.Get(op.key);
  } else if (op.type != OpType::kScan) {
    written = ApplyWrite(op);
  }
  ++ops_executed_;
  --in_flight_;
  MaybeNotifyDrained();
  if (done) done(status, written);
}

WrittenRow TenantDb::ApplyWrite(const Operation& op) {
  WrittenRow written;
  const storage::Lsn lsn = next_lsn_++;
  written.lsn = lsn;
  wal::LogRecord log;
  log.lsn = lsn;
  log.txn_id = 0;  // Filled per-op; commit records carry the txn id.
  switch (op.type) {
    case OpType::kUpdate: {
      written.key = op.key;
      written.digest = storage::RowDigest(op.key, lsn, config_.value_seed);
      table_.Put(storage::Record{op.key, lsn, written.digest});
      log.type = wal::LogType::kUpdate;
      log.key = op.key;
      log.digest = written.digest;
      break;
    }
    case OpType::kInsert: {
      const uint64_t key = next_insert_key_++;
      written.key = key;
      written.digest = storage::RowDigest(key, lsn, config_.value_seed);
      table_.Put(storage::Record{key, lsn, written.digest});
      log.type = wal::LogType::kInsert;
      log.key = key;
      log.digest = written.digest;
      break;
    }
    case OpType::kDelete: {
      written.key = op.key;
      written.deleted = true;
      table_.Erase(op.key);
      log.type = wal::LogType::kDelete;
      log.key = op.key;
      break;
    }
    case OpType::kRead:
    case OpType::kScan:  // Scans never reach ApplyWrite.
      break;
  }
  // Binlog append is functional bookkeeping here; durability cost is
  // charged once per transaction in Commit(). Row-changing entries are
  // accounted at full row-image size (row-based replication).
  const bool carries_image =
      log.type == wal::LogType::kInsert || log.type == wal::LogType::kUpdate;
  const Status appended =
      binlog_.Append(log, carries_image ? config_.layout.record_bytes : 0);
  // The engine assigns LSNs from its own monotone counter; an
  // out-of-order append is engine-state corruption, not a runtime error.
  SLACKER_CHECK(appended.ok(), appended.ToString());
  return written;
}

void TenantDb::Commit(uint64_t txn_id, std::function<void()> done) {
  wal::LogRecord commit;
  commit.lsn = next_lsn_++;
  commit.type = wal::LogType::kCommit;
  commit.txn_id = txn_id;
  const Status committed = binlog_.Append(commit);
  SLACKER_CHECK(committed.ok(), committed.ToString());
  sim_->After(config_.commit_latency, std::move(done));
}

void TenantDb::Freeze(std::function<void()> drained) {
  frozen_ = true;
  drain_waiters_.push_back(std::move(drained));
  MaybeNotifyDrained();
}

void TenantDb::MaybeNotifyDrained() {
  if (!frozen_ || in_flight_ > 0 || drain_waiters_.empty()) return;
  auto waiters = std::move(drain_waiters_);
  drain_waiters_.clear();
  for (auto& w : waiters) {
    if (w) sim_->After(0.0, std::move(w));
  }
}

void TenantDb::Unfreeze() {
  frozen_ = false;
  // Admit everything that queued behind the lock, in order.
  auto queued = std::move(frozen_queue_);
  frozen_queue_.clear();
  for (auto& pending : queued) {
    StartOp(pending.op, std::move(pending.done));
  }
}

void TenantDb::FailQueued() {
  auto queued = std::move(frozen_queue_);
  frozen_queue_.clear();
  for (auto& pending : queued) {
    if (pending.done) {
      // Defer so callers see consistent reentrancy with the success path.
      sim_->After(0.0, [done = std::move(pending.done)] {
        done(Status::Unavailable("tenant migrated away"), WrittenRow{});
      });
    }
  }
}

void TenantDb::FreezeRange(uint64_t lo, uint64_t hi,
                           std::function<void()> drained) {
  SLACKER_CHECK(!range_frozen_, "range freeze already active");
  range_frozen_ = true;
  range_lo_ = lo;
  range_hi_ = hi;
  // Drain exactly the in-flight ops that overlap the range — recorded
  // as a token set so the membership decision is made once, here, and
  // cannot drift as the insert cursor advances.
  range_draining_tokens_.clear();
  for (const auto& [token, pending] : pending_done_) {
    if (TouchesFrozenRange(pending.op)) range_draining_tokens_.insert(token);
  }
  range_drain_waiters_.push_back(std::move(drained));
  MaybeNotifyRangeDrained();
}

void TenantDb::MaybeNotifyRangeDrained() {
  if (!range_frozen_ || !range_draining_tokens_.empty() ||
      range_drain_waiters_.empty()) {
    return;
  }
  auto waiters = std::move(range_drain_waiters_);
  range_drain_waiters_.clear();
  for (auto& w : waiters) {
    if (w) sim_->After(0.0, std::move(w));
  }
}

void TenantDb::UnfreezeRange() {
  range_frozen_ = false;
  range_draining_tokens_.clear();
  auto queued = std::move(range_frozen_queue_);
  range_frozen_queue_.clear();
  for (auto& pending : queued) {
    if (frozen_) {
      // A whole-tenant freeze began while the range was frozen; the
      // released ops wait behind it like everything else.
      frozen_queue_.push_back(std::move(pending));
    } else {
      StartOp(pending.op, std::move(pending.done));
    }
  }
}

void TenantDb::FailRangeQueued() {
  range_frozen_ = false;
  range_draining_tokens_.clear();
  auto queued = std::move(range_frozen_queue_);
  range_frozen_queue_.clear();
  for (auto& pending : queued) {
    if (pending.done) {
      sim_->After(0.0, [done = std::move(pending.done)] {
        done(Status::Unavailable("range migrated away"), WrittenRow{});
      });
    }
  }
}

void TenantDb::FailInFlight(const Status& status) {
  auto pending = std::move(pending_done_);
  pending_done_.clear();
  op_start_.clear();
  in_flight_ = 0;
  range_draining_tokens_.clear();
  for (auto& [token, p] : pending) {
    if (!p.done) continue;
    // Defer: callers expect completion callbacks to arrive from the
    // event loop, never from inside the call that failed them.
    sim_->After(0.0, [done = std::move(p.done), status] {
      done(status, WrittenRow{});
    });
  }
  auto queued = std::move(frozen_queue_);
  frozen_queue_.clear();
  for (auto& p : queued) {
    if (!p.done) continue;
    sim_->After(0.0, [done = std::move(p.done), status] {
      done(status, WrittenRow{});
    });
  }
  auto range_queued = std::move(range_frozen_queue_);
  range_frozen_queue_.clear();
  for (auto& p : range_queued) {
    if (!p.done) continue;
    sim_->After(0.0, [done = std::move(p.done), status] {
      done(status, WrittenRow{});
    });
  }
  MaybeNotifyDrained();
  MaybeNotifyRangeDrained();
}

void TenantDb::ChargeSequentialRead(uint64_t bytes, uint64_t stream_id,
                                    std::function<void()> done) {
  // The completion is dropped if this instance dies first (crash or
  // delete) — the disk time was still spent, as on real hardware.
  disk_->Submit(
      resource::IoKind::kSequentialRead, bytes,
      done == nullptr
          ? std::function<void()>(nullptr)
          : [done = std::move(done), alive = std::weak_ptr<bool>(alive_)] {
              if (!alive.expired()) done();
            },
      stream_id);
}

void TenantDb::ChargeSequentialWrite(uint64_t bytes, uint64_t stream_id,
                                     std::function<void()> done) {
  disk_->Submit(
      resource::IoKind::kSequentialWrite, bytes,
      done == nullptr
          ? std::function<void()>(nullptr)
          : [done = std::move(done), alive = std::weak_ptr<bool>(alive_)] {
              if (!alive.expired()) done();
            },
      stream_id);
}

void TenantDb::ChargeCpu(SimTime service, std::function<void()> done) {
  cpu_->Submit(
      service,
      done == nullptr
          ? std::function<void()>(nullptr)
          : [done = std::move(done), alive = std::weak_ptr<bool>(alive_)] {
              if (!alive.expired()) done();
            });
}

void TenantDb::RestoreBinlog(wal::Binlog log) {
  binlog_ = std::move(log);
  SyncCursorsAfterIngest(binlog_.last_lsn());
}

void TenantDb::WarmBufferPool() {
  const uint64_t total = config_.layout.TotalPages();
  const uint64_t frames = pool_->capacity();
  const uint64_t to_warm = std::min(total, frames);
  // Which pages are resident is immaterial under uniform access; what
  // matters is that the pool is full, giving hit rate ≈ frames/total.
  // (Under a shared pool, tenants warming in turn contend for frames —
  // exactly the steady state they will also contend for in service.)
  for (uint64_t page = 0; page < to_warm; ++page) {
    pool_->Touch(PoolPageId(page), /*make_dirty=*/false);
  }
  pool_->ResetStats();
}

int TenantDb::PinBinlog(storage::Lsn from_lsn) {
  const int token = next_pin_token_++;
  binlog_pins_[token] = from_lsn;
  return token;
}

void TenantDb::UnpinBinlog(int token) { binlog_pins_.erase(token); }

storage::Lsn TenantDb::PurgeBinlog(storage::Lsn upto) {
  storage::Lsn limit = upto;
  for (const auto& [token, lsn] : binlog_pins_) {
    limit = std::min(limit, lsn);
  }
  binlog_.Truncate(limit);
  return binlog_.first_lsn();
}

void TenantDb::SyncCursorsAfterIngest(storage::Lsn source_last_lsn) {
  if (source_last_lsn + 1 > next_lsn_) next_lsn_ = source_last_lsn + 1;
  const Result<uint64_t> max_key = table_.MaxKey();
  if (max_key.ok() && *max_key + 1 > next_insert_key_) {
    next_insert_key_ = *max_key + 1;
  }
}

uint64_t TenantDb::StateDigest() const {
  uint64_t digest = 0xcbf29ce484222325ULL;
  for (auto it = table_.Begin(); it.Valid(); it.Next()) {
    const storage::Record& r = it.record();
    digest = HashCombine(digest, r.key);
    digest = HashCombine(digest, r.lsn);
    digest = HashCombine(digest, r.digest);
  }
  return digest;
}

uint64_t TenantDb::DataBytes() const {
  return config_.layout.PagesFor(table_.size()) * config_.layout.page_bytes;
}

uint64_t TenantDb::StateDigestRange(uint64_t lo, uint64_t hi) const {
  uint64_t digest = 0xcbf29ce484222325ULL;
  for (auto it = table_.Seek(lo); it.Valid() && it.record().key < hi;
       it.Next()) {
    const storage::Record& r = it.record();
    digest = HashCombine(digest, r.key);
    digest = HashCombine(digest, r.lsn);
    digest = HashCombine(digest, r.digest);
  }
  return digest;
}

uint64_t TenantDb::RowsInRange(uint64_t lo, uint64_t hi) const {
  uint64_t rows = 0;
  for (auto it = table_.Seek(lo); it.Valid() && it.record().key < hi;
       it.Next()) {
    ++rows;
  }
  return rows;
}

uint64_t TenantDb::DataBytesRange(uint64_t lo, uint64_t hi) const {
  return config_.layout.PagesFor(RowsInRange(lo, hi)) *
         config_.layout.page_bytes;
}

uint64_t TenantDb::EraseRangeRows(uint64_t lo, uint64_t hi) {
  std::vector<uint64_t> keys;
  for (auto it = table_.Seek(lo); it.Valid() && it.record().key < hi;
       it.Next()) {
    keys.push_back(it.record().key);
  }
  for (const uint64_t key : keys) table_.Erase(key);
  return keys.size();
}

storage::DataDirectory TenantDb::Directory() const {
  return storage::DataDirectory::ForTenant(config_.tenant_id, DataBytes(),
                                           binlog_.total_bytes());
}

}  // namespace slacker::engine
