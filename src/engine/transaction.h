#ifndef SLACKER_ENGINE_TRANSACTION_H_
#define SLACKER_ENGINE_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/engine/tenant_db.h"
#include "src/sim/simulator.h"

namespace slacker::engine {

/// A transaction: a serial list of basic operations (the paper's
/// modified-YCSB transactions are 10 operations each).
struct TxnSpec {
  uint64_t txn_id = 0;
  uint64_t tenant_id = 0;
  std::vector<Operation> ops;
};

struct TxnResult {
  Status status;
  uint64_t txn_id = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  /// Row images of every write this transaction performed, in order;
  /// lets clients verify durability end-to-end across migrations.
  std::vector<WrittenRow> writes;

  double LatencyMs() const { return MsFromSeconds(end - start); }
};

using TxnCallback = std::function<void(const TxnResult&)>;

/// Executes a transaction against `db`: ops run serially (each op's
/// CPU+I/O completes before the next begins), then the commit record is
/// flushed. If any op fails (e.g., the tenant migrated away
/// mid-transaction), the transaction aborts with that status and the
/// client retries against the new authoritative replica. `start_time`
/// is when the transaction arrived — queueing delay ahead of execution
/// counts toward its latency (§5.1.2). The txn owns its state; `db`
/// and `sim` must outlive completion.
void ExecuteTransaction(sim::Simulator* sim, TenantDb* db, TxnSpec spec,
                        SimTime start_time, TxnCallback done);

}  // namespace slacker::engine

#endif  // SLACKER_ENGINE_TRANSACTION_H_
