#include "src/engine/transaction.h"

#include <memory>
#include <utility>

namespace slacker::engine {
namespace {

struct TxnState {
  sim::Simulator* sim;
  TenantDb* db;
  TxnSpec spec;
  TxnResult result;
  size_t next_op = 0;
  TxnCallback done;
};

void RunNextOp(std::shared_ptr<TxnState> state) {
  if (state->next_op >= state->spec.ops.size()) {
    TxnState* raw = state.get();
    raw->db->Commit(raw->spec.txn_id, [state = std::move(state)] {
      state->result.status = Status::Ok();
      state->result.end = state->sim->Now();
      if (state->done) state->done(state->result);
    });
    return;
  }
  const Operation& op = state->spec.ops[state->next_op++];
  TxnState* raw = state.get();
  raw->db->ExecuteOp(op, [state = std::move(state)](
                             Status status, const WrittenRow& row) {
    if (!status.ok()) {
      state->result.status = status;
      state->result.end = state->sim->Now();
      if (state->done) state->done(state->result);
      return;
    }
    if (row.lsn != 0) state->result.writes.push_back(row);
    RunNextOp(state);
  });
}

}  // namespace

void ExecuteTransaction(sim::Simulator* sim, TenantDb* db, TxnSpec spec,
                        SimTime start_time, TxnCallback done) {
  auto state = std::make_shared<TxnState>();
  state->sim = sim;
  state->db = db;
  state->spec = std::move(spec);
  state->result.txn_id = state->spec.txn_id;
  state->result.start = start_time;
  state->done = std::move(done);
  RunNextOp(std::move(state));
}

}  // namespace slacker::engine
