#include "src/storage/buffer_pool.h"

namespace slacker::storage {

BufferPool::BufferPool(BufferPoolOptions options) : options_(options) {}

PageAccess BufferPool::Touch(uint64_t page_id, bool make_dirty) {
  PageAccess result;
  auto it = table_.find(page_id);
  if (it != table_.end()) {
    result.hit = true;
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (make_dirty && !it->second->dirty) {
      it->second->dirty = true;
      ++dirty_count_;
    }
    return result;
  }

  ++misses_;
  if (table_.size() >= options_.capacity_pages && !lru_.empty()) {
    const Frame& victim = lru_.back();
    if (victim.dirty) {
      result.evicted_dirty = true;
      result.evicted_page = victim.page_id;
      --dirty_count_;
    }
    table_.erase(victim.page_id);
    lru_.pop_back();
  }
  lru_.push_front(Frame{page_id, make_dirty});
  table_[page_id] = lru_.begin();
  if (make_dirty) ++dirty_count_;
  return result;
}

bool BufferPool::Contains(uint64_t page_id) const {
  return table_.count(page_id) > 0;
}

bool BufferPool::IsDirty(uint64_t page_id) const {
  auto it = table_.find(page_id);
  return it != table_.end() && it->second->dirty;
}

size_t BufferPool::FlushAll() {
  size_t flushed = 0;
  for (Frame& frame : lru_) {
    if (frame.dirty) {
      frame.dirty = false;
      ++flushed;
    }
  }
  dirty_count_ = 0;
  return flushed;
}

void BufferPool::Clear() {
  lru_.clear();
  table_.clear();
  dirty_count_ = 0;
}

double BufferPool::HitRate() const {
  const uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void BufferPool::ResetStats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace slacker::storage
