#include "src/storage/data_directory.h"

namespace slacker::storage {

DataDirectory DataDirectory::ForTenant(uint64_t tenant_id, uint64_t data_bytes,
                                       uint64_t log_bytes) {
  DataDirectory dir("/var/lib/slacker/tenant_" + std::to_string(tenant_id));
  dir.AddFile("ibdata1", data_bytes);
  dir.AddFile("binlog.000001", log_bytes);
  dir.AddFile("my.cnf", 4096);
  return dir;
}

void DataDirectory::AddFile(const std::string& name, uint64_t bytes) {
  files_.push_back(DataFile{name, bytes});
}

void DataDirectory::SetFileSize(const std::string& name, uint64_t bytes) {
  for (DataFile& f : files_) {
    if (f.name == name) {
      f.bytes = bytes;
      return;
    }
  }
  AddFile(name, bytes);
}

uint64_t DataDirectory::TotalBytes() const {
  uint64_t total = 0;
  for (const DataFile& f : files_) total += f.bytes;
  return total;
}

}  // namespace slacker::storage
