#include "src/storage/btree.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace slacker::storage {

struct BTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  bool is_leaf;
  InternalNode* parent = nullptr;
};

struct BTree::LeafNode : BTree::Node {
  LeafNode() : Node(true) {}
  std::vector<Record> records;  // Sorted by key.
  LeafNode* next = nullptr;
  LeafNode* prev = nullptr;
};

struct BTree::InternalNode : BTree::Node {
  InternalNode() : Node(false) {}
  // children.size() == keys.size() + 1. Subtree children[i] holds keys
  // strictly below keys[i]; children[i+1] holds keys >= keys[i].
  std::vector<uint64_t> keys;
  std::vector<Node*> children;

  size_t ChildIndex(const Node* child) const {
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i] == child) return i;
    }
    assert(false && "child not found in parent");
    return 0;
  }
};

namespace {

constexpr size_t kMinFill = BTree::kFanout / 2;

/// Index of the child subtree that may contain `key`.
size_t DescendIndex(const std::vector<uint64_t>& keys, uint64_t key) {
  // First separator strictly greater than key → go left of it; keys
  // equal to a separator belong to the right subtree.
  return std::upper_bound(keys.begin(), keys.end(), key) - keys.begin();
}

struct RecordKeyLess {
  bool operator()(const Record& r, uint64_t key) const { return r.key < key; }
  bool operator()(uint64_t key, const Record& r) const { return key < r.key; }
};

}  // namespace

BTree::BTree() : root_(new LeafNode()), size_(0) {}

BTree::~BTree() { FreeTree(root_); }

BTree::BTree(BTree&& other) noexcept
    : root_(other.root_), size_(other.size_) {
  other.root_ = new LeafNode();
  other.size_ = 0;
}

BTree& BTree::operator=(BTree&& other) noexcept {
  if (this == &other) return *this;
  FreeTree(root_);
  root_ = other.root_;
  size_ = other.size_;
  other.root_ = new LeafNode();
  other.size_ = 0;
  return *this;
}

void BTree::FreeTree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    for (Node* child : internal->children) FreeTree(child);
  }
  if (node->is_leaf) {
    delete static_cast<LeafNode*>(node);
  } else {
    delete static_cast<InternalNode*>(node);
  }
}

void BTree::Clear() {
  FreeTree(root_);
  root_ = new LeafNode();
  size_ = 0;
}

BTree::LeafNode* BTree::FindLeaf(uint64_t key) const {
  Node* node = root_;
  while (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    node = internal->children[DescendIndex(internal->keys, key)];
  }
  return static_cast<LeafNode*>(node);
}

const Record* BTree::Get(uint64_t key) const {
  const LeafNode* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->records.begin(), leaf->records.end(), key,
                             RecordKeyLess{});
  if (it == leaf->records.end() || it->key != key) return nullptr;
  return &*it;
}

bool BTree::Put(const Record& record) {
  LeafNode* leaf = FindLeaf(record.key);
  auto it = std::lower_bound(leaf->records.begin(), leaf->records.end(),
                             record.key, RecordKeyLess{});
  if (it != leaf->records.end() && it->key == record.key) {
    *it = record;
    return false;
  }
  leaf->records.insert(it, record);
  ++size_;

  if (leaf->records.size() <= kFanout) return true;

  // Split: the upper half moves into a new right sibling.
  auto* right = new LeafNode();
  const size_t mid = leaf->records.size() / 2;
  right->records.assign(leaf->records.begin() + mid, leaf->records.end());
  leaf->records.resize(mid);
  right->next = leaf->next;
  if (right->next != nullptr) right->next->prev = right;
  right->prev = leaf;
  leaf->next = right;
  InsertIntoParent(leaf, right->records.front().key, right);
  return true;
}

void BTree::InsertIntoParent(Node* left, uint64_t sep, Node* right) {
  if (left->parent == nullptr) {
    auto* new_root = new InternalNode();
    new_root->keys.push_back(sep);
    new_root->children = {left, right};
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }

  InternalNode* parent = left->parent;
  const size_t pos = parent->ChildIndex(left);
  parent->keys.insert(parent->keys.begin() + pos, sep);
  parent->children.insert(parent->children.begin() + pos + 1, right);
  right->parent = parent;

  if (parent->children.size() <= kFanout) return;

  // Split the internal node; the middle separator is pushed up, not
  // copied (B+-tree internal split).
  auto* new_right = new InternalNode();
  const size_t mid = parent->keys.size() / 2;
  const uint64_t push_up = parent->keys[mid];
  new_right->keys.assign(parent->keys.begin() + mid + 1, parent->keys.end());
  new_right->children.assign(parent->children.begin() + mid + 1,
                             parent->children.end());
  parent->keys.resize(mid);
  parent->children.resize(mid + 1);
  for (Node* child : new_right->children) child->parent = new_right;
  InsertIntoParent(parent, push_up, new_right);
}

bool BTree::Erase(uint64_t key) {
  LeafNode* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->records.begin(), leaf->records.end(), key,
                             RecordKeyLess{});
  if (it == leaf->records.end() || it->key != key) return false;
  leaf->records.erase(it);
  --size_;
  RebalanceAfterErase(leaf);
  return true;
}

void BTree::RebalanceAfterErase(Node* node) {
  // Root never underflows; an empty internal root collapses below.
  if (node->parent == nullptr) {
    if (!node->is_leaf) {
      auto* internal = static_cast<InternalNode*>(node);
      if (internal->children.size() == 1) {
        root_ = internal->children.front();
        root_->parent = nullptr;
        internal->children.clear();
        delete internal;
      }
    }
    return;
  }

  const size_t fill = node->is_leaf
                          ? static_cast<LeafNode*>(node)->records.size()
                          : static_cast<InternalNode*>(node)->children.size();
  if (fill >= kMinFill) return;

  InternalNode* parent = node->parent;
  const size_t idx = parent->ChildIndex(node);
  Node* left_sib = idx > 0 ? parent->children[idx - 1] : nullptr;
  Node* right_sib =
      idx + 1 < parent->children.size() ? parent->children[idx + 1] : nullptr;

  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    auto* left = static_cast<LeafNode*>(left_sib);
    auto* right = static_cast<LeafNode*>(right_sib);
    if (left != nullptr && left->records.size() > kMinFill) {
      // Borrow the largest record from the left sibling.
      leaf->records.insert(leaf->records.begin(), left->records.back());
      left->records.pop_back();
      parent->keys[idx - 1] = leaf->records.front().key;
      return;
    }
    if (right != nullptr && right->records.size() > kMinFill) {
      leaf->records.push_back(right->records.front());
      right->records.erase(right->records.begin());
      parent->keys[idx] = right->records.front().key;
      return;
    }
    // Merge with a sibling (prefer left so the survivor keeps its slot).
    LeafNode* into = left != nullptr ? left : leaf;
    LeafNode* from = left != nullptr ? leaf : right;
    const size_t sep_idx = left != nullptr ? idx - 1 : idx;
    into->records.insert(into->records.end(), from->records.begin(),
                         from->records.end());
    into->next = from->next;
    if (from->next != nullptr) from->next->prev = into;
    parent->keys.erase(parent->keys.begin() + sep_idx);
    parent->children.erase(parent->children.begin() + sep_idx + 1);
    delete from;
    RebalanceAfterErase(parent);
    return;
  }

  auto* internal = static_cast<InternalNode*>(node);
  auto* left = static_cast<InternalNode*>(left_sib);
  auto* right = static_cast<InternalNode*>(right_sib);
  if (left != nullptr && left->children.size() > kMinFill) {
    // Rotate through the parent separator.
    internal->children.insert(internal->children.begin(),
                              left->children.back());
    internal->children.front()->parent = internal;
    internal->keys.insert(internal->keys.begin(), parent->keys[idx - 1]);
    parent->keys[idx - 1] = left->keys.back();
    left->keys.pop_back();
    left->children.pop_back();
    return;
  }
  if (right != nullptr && right->children.size() > kMinFill) {
    internal->children.push_back(right->children.front());
    internal->children.back()->parent = internal;
    internal->keys.push_back(parent->keys[idx]);
    parent->keys[idx] = right->keys.front();
    right->keys.erase(right->keys.begin());
    right->children.erase(right->children.begin());
    return;
  }
  // Merge internals: the parent separator descends between them.
  InternalNode* into = left != nullptr ? left : internal;
  InternalNode* from = left != nullptr ? internal : right;
  const size_t sep_idx = left != nullptr ? idx - 1 : idx;
  into->keys.push_back(parent->keys[sep_idx]);
  into->keys.insert(into->keys.end(), from->keys.begin(), from->keys.end());
  for (Node* child : from->children) child->parent = into;
  into->children.insert(into->children.end(), from->children.begin(),
                        from->children.end());
  from->children.clear();
  parent->keys.erase(parent->keys.begin() + sep_idx);
  parent->children.erase(parent->children.begin() + sep_idx + 1);
  delete from;
  RebalanceAfterErase(parent);
}

const Record& BTree::Iterator::record() const {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  return leaf->records[index_];
}

void BTree::Iterator::Next() {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  ++index_;
  while (leaf != nullptr && index_ >= leaf->records.size()) {
    leaf = leaf->next;
    index_ = 0;
  }
  leaf_ = leaf;
}

BTree::Iterator BTree::Seek(uint64_t key) const {
  const LeafNode* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->records.begin(), leaf->records.end(),
                                   key, RecordKeyLess{});
  Iterator iter;
  iter.leaf_ = leaf;
  iter.index_ = static_cast<size_t>(it - leaf->records.begin());
  if (iter.index_ >= leaf->records.size()) {
    // Either an empty root leaf or key beyond this leaf; walk forward.
    const LeafNode* next = leaf->next;
    while (next != nullptr && next->records.empty()) next = next->next;
    iter.leaf_ = next;
    iter.index_ = 0;
  }
  return iter;
}

BTree::Iterator BTree::Begin() const { return Seek(0); }

Result<uint64_t> BTree::MaxKey() const {
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children.back();
  }
  const auto* leaf = static_cast<const LeafNode*>(node);
  if (leaf->records.empty()) return Status::NotFound("tree is empty");
  return leaf->records.back().key;
}

std::vector<uint64_t> BTree::SubtreeSplitKeys(size_t max_splits) const {
  std::vector<uint64_t> candidates;
  if (max_splits == 0) return candidates;
  if (root_->is_leaf) {
    // No internal separators exist; every record boundary is trivially
    // subtree-aligned (a record is a one-row subtree).
    const auto* leaf = static_cast<const LeafNode*>(root_);
    for (size_t i = 1; i < leaf->records.size(); ++i) {
      candidates.push_back(leaf->records[i].key);
    }
  } else {
    // Collect separators level by level: every key of an internal node
    // is a subtree boundary, and deeper levels only refine the ones
    // above. Stop as soon as a level's accumulated separators suffice,
    // so partitions stay as coarse (and as balanced) as the tree allows.
    std::vector<const InternalNode*> level = {
        static_cast<const InternalNode*>(root_)};
    while (!level.empty()) {
      for (const InternalNode* node : level) {
        candidates.insert(candidates.end(), node->keys.begin(),
                          node->keys.end());
      }
      if (candidates.size() >= max_splits) break;
      std::vector<const InternalNode*> next;
      for (const InternalNode* node : level) {
        for (const Node* child : node->children) {
          if (!child->is_leaf) {
            next.push_back(static_cast<const InternalNode*>(child));
          }
        }
      }
      level = std::move(next);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }
  if (candidates.size() <= max_splits) return candidates;
  // Thin to an evenly spaced subset of exactly max_splits keys.
  std::vector<uint64_t> picked;
  picked.reserve(max_splits);
  for (size_t i = 1; i <= max_splits; ++i) {
    const size_t index = i * candidates.size() / (max_splits + 1);
    picked.push_back(candidates[std::min(index, candidates.size() - 1)]);
  }
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  return picked;
}

int BTree::LeafDepth() const {
  int depth = 0;
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children.front();
    ++depth;
  }
  return depth;
}

int BTree::Height() const { return LeafDepth() + 1; }

Status BTree::ValidateNode(const Node* node, uint64_t lo, uint64_t hi,
                           bool has_lo, bool has_hi, int depth,
                           int expected_leaf_depth) const {
  const bool is_root = node == root_;
  if (node->is_leaf) {
    if (depth != expected_leaf_depth) {
      return Status::Corruption("leaves at unequal depth");
    }
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (!is_root && leaf->records.size() < kMinFill) {
      return Status::Corruption("leaf underfull");
    }
    if (leaf->records.size() > kFanout) {
      return Status::Corruption("leaf overfull");
    }
    uint64_t prev = 0;
    bool first = true;
    for (const Record& r : leaf->records) {
      if (!first && r.key <= prev) return Status::Corruption("leaf unsorted");
      if (has_lo && r.key < lo) return Status::Corruption("key below bound");
      if (has_hi && r.key >= hi) return Status::Corruption("key above bound");
      prev = r.key;
      first = false;
    }
    return Status::Ok();
  }

  const auto* internal = static_cast<const InternalNode*>(node);
  if (internal->children.size() != internal->keys.size() + 1) {
    return Status::Corruption("child/key count mismatch");
  }
  if (!is_root && internal->children.size() < kMinFill) {
    return Status::Corruption("internal underfull");
  }
  if (internal->children.size() > kFanout) {
    return Status::Corruption("internal overfull");
  }
  for (size_t i = 1; i < internal->keys.size(); ++i) {
    if (internal->keys[i] <= internal->keys[i - 1]) {
      return Status::Corruption("separators unsorted");
    }
  }
  for (size_t i = 0; i < internal->children.size(); ++i) {
    const Node* child = internal->children[i];
    if (child->parent != internal) {
      return Status::Corruption("bad parent pointer");
    }
    const bool child_has_lo = i > 0 || has_lo;
    const uint64_t child_lo = i > 0 ? internal->keys[i - 1] : lo;
    const bool child_has_hi = i < internal->keys.size() || has_hi;
    const uint64_t child_hi =
        i < internal->keys.size() ? internal->keys[i] : hi;
    SLACKER_RETURN_IF_ERROR(ValidateNode(child, child_lo, child_hi,
                                         child_has_lo, child_has_hi, depth + 1,
                                         expected_leaf_depth));
  }
  return Status::Ok();
}

Status BTree::Validate() const {
  SLACKER_RETURN_IF_ERROR(
      ValidateNode(root_, 0, 0, false, false, 0, LeafDepth()));
  // The leaf chain must enumerate exactly size() records in order.
  size_t seen = 0;
  uint64_t prev = 0;
  bool first = true;
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    if (!first && it.record().key <= prev) {
      return Status::Corruption("leaf chain unsorted");
    }
    prev = it.record().key;
    first = false;
    ++seen;
  }
  if (seen != size_) {
    std::ostringstream msg;
    msg << "leaf chain count " << seen << " != size " << size_;
    return Status::Corruption(msg.str());
  }
  return Status::Ok();
}

}  // namespace slacker::storage
