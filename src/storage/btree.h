#ifndef SLACKER_STORAGE_BTREE_H_
#define SLACKER_STORAGE_BTREE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/storage/record.h"

namespace slacker::storage {

/// In-memory B+-tree keyed by uint64, storing Record values in the
/// leaves. This is the tenant's clustered index (the InnoDB analog).
/// Supports upsert, point lookup, delete with rebalancing, and ordered
/// scans via leaf chaining — the scan is what the hot-backup streamer
/// uses to produce a page-ordered snapshot.
class BTree {
 public:
  /// Maximum records per leaf / children per internal node.
  static constexpr size_t kFanout = 64;

  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;

  /// Inserts or overwrites by record.key. Returns true if the key was
  /// newly inserted (false for overwrite).
  bool Put(const Record& record);

  /// Returns the record for `key`, or nullptr. The pointer is
  /// invalidated by any mutation.
  const Record* Get(uint64_t key) const;

  /// Removes `key`; returns false if absent.
  bool Erase(uint64_t key);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  /// Forward iterator over records in key order.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    const Record& record() const;
    void Next();

   private:
    friend class BTree;
    const void* leaf_ = nullptr;
    size_t index_ = 0;
  };

  /// Iterator at the first record with key >= `key`.
  Iterator Seek(uint64_t key) const;
  /// Iterator at the smallest key.
  Iterator Begin() const;

  /// Largest key present; NotFound when empty.
  Result<uint64_t> MaxKey() const;

  /// Up to `max_splits` strictly increasing separator keys, each
  /// aligned to a subtree boundary: splitting the key space at a
  /// returned key k puts every record of some whole subtree strictly
  /// below k and the rest at or above it. The tree's own internal
  /// separators are collected top-down (shallowest levels first) until
  /// enough exist, then thinned to an evenly spaced subset — so the
  /// resulting partitions track the tree's actual key distribution,
  /// not an assumed-uniform key space. A root-leaf tree falls back to
  /// record keys. Fewer (possibly zero) keys come back when the tree
  /// is too small to cut `max_splits` ways.
  std::vector<uint64_t> SubtreeSplitKeys(size_t max_splits) const;

  /// Checks structural invariants (key ordering, fill factors, leaf
  /// chain consistency, separator correctness). Used by tests.
  Status Validate() const;

  /// Height of the tree (1 = just a root leaf).
  int Height() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  LeafNode* FindLeaf(uint64_t key) const;
  void InsertIntoParent(Node* left, uint64_t sep, Node* right);
  void RebalanceAfterErase(Node* node);
  Status ValidateNode(const Node* node, uint64_t lo, uint64_t hi,
                      bool has_lo, bool has_hi, int depth,
                      int expected_leaf_depth) const;
  int LeafDepth() const;
  void FreeTree(Node* node);

  Node* root_;
  size_t size_;
};

}  // namespace slacker::storage

#endif  // SLACKER_STORAGE_BTREE_H_
