#include "src/storage/record.h"

#include "src/common/checksum.h"

namespace slacker::storage {

uint64_t RowDigest(uint64_t key, Lsn lsn, uint64_t value_seed) {
  uint64_t digest = 0xcbf29ce484222325ULL;
  digest = HashCombine(digest, key);
  digest = HashCombine(digest, lsn);
  digest = HashCombine(digest, value_seed);
  return digest;
}

std::vector<uint8_t> MaterializePayload(const Record& record,
                                        size_t logical_size) {
  std::vector<uint8_t> out(logical_size);
  uint64_t state = record.digest ^ record.key;
  for (size_t i = 0; i < logical_size; ++i) {
    // xorshift64 keeps expansion cheap and deterministic.
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    out[i] = static_cast<uint8_t>(state);
  }
  return out;
}

}  // namespace slacker::storage
