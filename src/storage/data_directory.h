#ifndef SLACKER_STORAGE_DATA_DIRECTORY_H_
#define SLACKER_STORAGE_DATA_DIRECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace slacker::storage {

/// One file in a tenant's data directory.
struct DataFile {
  std::string name;
  uint64_t bytes = 0;
};

/// The "tenant is just a directory" abstraction from §2.2: everything a
/// MySQL instance owns — tablespace, logs, config — as an enumerable
/// file set. Stop-and-copy migrates exactly this inventory; the hot
/// backup streams the tablespace part and ships log deltas separately.
class DataDirectory {
 public:
  /// Builds the standard inventory for a tenant with `data_bytes` of
  /// table data and `log_bytes` of binlog.
  static DataDirectory ForTenant(uint64_t tenant_id, uint64_t data_bytes,
                                 uint64_t log_bytes);

  void AddFile(const std::string& name, uint64_t bytes);
  /// Updates the size of an existing file; adds it if missing.
  void SetFileSize(const std::string& name, uint64_t bytes);

  const std::vector<DataFile>& files() const { return files_; }
  uint64_t TotalBytes() const;
  std::string path() const { return path_; }

 private:
  explicit DataDirectory(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::vector<DataFile> files_;
};

}  // namespace slacker::storage

#endif  // SLACKER_STORAGE_DATA_DIRECTORY_H_
