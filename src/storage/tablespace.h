#ifndef SLACKER_STORAGE_TABLESPACE_H_
#define SLACKER_STORAGE_TABLESPACE_H_

#include <cstdint>

#include "src/common/units.h"

namespace slacker::storage {

/// Physical layout of one tenant's clustered table: a dense key space
/// packed into fixed-size pages. Maps keys to page ids (for buffer-pool
/// accounting) and exposes the logical sizes that drive I/O and
/// migration costs.
struct TablespaceLayout {
  /// Page size; InnoDB default.
  uint64_t page_bytes = 16 * kKiB;
  /// Logical bytes per row (YCSB default: 10 fields x 100 B ≈ 1 KiB).
  uint64_t record_bytes = kKiB;
  /// Number of rows the tenant was pre-populated with.
  uint64_t record_count = kGiB / kKiB;  // 1 GiB tenant by default.

  uint64_t RecordsPerPage() const { return page_bytes / record_bytes; }

  /// Page holding `key` (keys are dense [0, record_count) at load time;
  /// later inserts extend the tail pages).
  uint64_t PageOf(uint64_t key) const { return key / RecordsPerPage(); }

  /// Pages needed for `records` rows.
  uint64_t PagesFor(uint64_t records) const {
    const uint64_t per_page = RecordsPerPage();
    return (records + per_page - 1) / per_page;
  }

  uint64_t TotalPages() const { return PagesFor(record_count); }

  /// Logical on-disk footprint of the table data.
  uint64_t DataBytes() const { return TotalPages() * page_bytes; }
};

}  // namespace slacker::storage

#endif  // SLACKER_STORAGE_TABLESPACE_H_
