#include "src/storage/tablespace.h"

// TablespaceLayout is header-only arithmetic; this translation unit
// exists to give the header a home in the library and to anchor any
// future non-inline additions.

namespace slacker::storage {}  // namespace slacker::storage
