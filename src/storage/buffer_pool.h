#ifndef SLACKER_STORAGE_BUFFER_POOL_H_
#define SLACKER_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace slacker::storage {

struct BufferPoolOptions {
  /// Number of page frames. The paper sets the InnoDB buffer to 128 MB
  /// against a 1 GB tenant precisely to force disk activity; with 16 KiB
  /// pages that is 8192 frames.
  size_t capacity_pages = 8192;
};

/// Result of touching a page in the pool.
struct PageAccess {
  /// True if the page was already resident (no disk read needed).
  bool hit = false;
  /// True if a dirty page had to be evicted to make room; the engine
  /// issues the corresponding background write-back I/O.
  bool evicted_dirty = false;
  uint64_t evicted_page = 0;
};

/// LRU page cache bookkeeping for one tenant. Purely a state machine:
/// it decides hit/miss/eviction, while the engine charges the simulated
/// I/O. Keeping policy separate from timing lets the unit tests verify
/// LRU behaviour exactly.
class BufferPool {
 public:
  explicit BufferPool(BufferPoolOptions options);

  /// Touches `page_id`, loading it (evicting LRU if full) on a miss.
  /// `make_dirty` marks the page dirty (a row write).
  PageAccess Touch(uint64_t page_id, bool make_dirty);

  /// Whether the page is currently resident (does not affect LRU order).
  bool Contains(uint64_t page_id) const;
  bool IsDirty(uint64_t page_id) const;

  /// Writes back all dirty pages (checkpoint); returns how many were
  /// dirty. The engine charges the corresponding sequential write I/O.
  size_t FlushAll();

  /// Drops everything (tenant deletion / post-migration teardown).
  void Clear();

  size_t resident_pages() const { return table_.size(); }
  size_t dirty_pages() const { return dirty_count_; }
  size_t capacity() const { return options_.capacity_pages; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const;
  void ResetStats();

 private:
  struct Frame {
    uint64_t page_id;
    bool dirty;
  };

  BufferPoolOptions options_;
  // Front = most recently used.
  std::list<Frame> lru_;
  std::unordered_map<uint64_t, std::list<Frame>::iterator> table_;
  size_t dirty_count_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace slacker::storage

#endif  // SLACKER_STORAGE_BUFFER_POOL_H_
