#ifndef SLACKER_STORAGE_RECORD_H_
#define SLACKER_STORAGE_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slacker::storage {

/// Log sequence number; strictly increasing per tenant. LSN 0 means
/// "never written" (initial load).
using Lsn = uint64_t;

/// A row. To keep a 1 GB logical tenant cheap to hold in memory, the
/// row body is represented by a 64-bit content digest rather than the
/// full byte payload; the *logical* size (what migration must copy and
/// what the SLA-relevant I/O costs are charged for) lives in the table
/// schema. MaterializePayload() expands the digest into deterministic
/// bytes when real bytes are needed (wire tests, checksум verification).
struct Record {
  uint64_t key = 0;
  /// LSN of the write that produced this version (0 for initial load).
  Lsn lsn = 0;
  /// Deterministic digest of the row contents.
  uint64_t digest = 0;

  bool operator==(const Record& other) const = default;
};

/// Digest for a freshly written row version: a pure function of the
/// key, the writing LSN, and a value seed, so that source and target
/// can independently verify convergence after migration.
uint64_t RowDigest(uint64_t key, Lsn lsn, uint64_t value_seed);

/// Expands a record into `logical_size` deterministic bytes.
std::vector<uint8_t> MaterializePayload(const Record& record,
                                        size_t logical_size);

}  // namespace slacker::storage

#endif  // SLACKER_STORAGE_RECORD_H_
