#ifndef SLACKER_SIM_CALLBACK_H_
#define SLACKER_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace slacker::sim {

/// Move-only type-erased `void()` callable with small-buffer storage.
///
/// The event queue schedules millions of closures per simulated run;
/// `std::function` heap-allocates any capture larger than its tiny
/// internal buffer (16 bytes on common ABIs), which makes every
/// Schedule() an allocation on the simulator hot path. Callback keeps
/// kInlineBytes of inline storage — enough for the `[this, done]`
/// shapes the model code actually schedules — and only falls back to
/// the heap for oversized or over-aligned captures, so the common case
/// never allocates. Unlike std::function it is move-only, so move-only
/// captures are also accepted.
class Callback {
 public:
  /// Captures up to this size (and alignof <= kInlineAlign) are stored
  /// inline; larger ones take one heap allocation. Sized so an event
  /// node (src/sim/event_queue.h) stays under two cache lines.
  static constexpr size_t kInlineBytes = 40;
  static constexpr size_t kInlineAlign = alignof(void*);

  Callback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor)
  Callback(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapModel<D>::kOps;
    }
  }

  Callback(Callback&& other) noexcept { MoveFrom(std::move(other)); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { Reset(); }

  /// Drops the held callable (if any).
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable from `src` into `dst`, then
    /// destroys the `src` copy. Used by the move constructor (and thus
    /// by event-pool growth, which relocates nodes).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <typename D>
  struct InlineModel {
    static void Invoke(void* s) { (*std::launder(static_cast<D*>(s)))(); }
    static void Relocate(void* src, void* dst) {
      D* f = std::launder(static_cast<D*>(src));
      ::new (dst) D(std::move(*f));
      f->~D();
    }
    static void Destroy(void* s) { std::launder(static_cast<D*>(s))->~D(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename D>
  struct HeapModel {
    static D* Held(void* s) { return *std::launder(static_cast<D**>(s)); }
    static void Invoke(void* s) { (*Held(s))(); }
    static void Relocate(void* src, void* dst) { ::new (dst) D*(Held(src)); }
    static void Destroy(void* s) { delete Held(s); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(Callback&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
};

}  // namespace slacker::sim

#endif  // SLACKER_SIM_CALLBACK_H_
