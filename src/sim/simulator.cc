#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace slacker::sim {

EventId Simulator::After(SimTime delay, Callback fn) {
  return At(now_ + std::max(delay, 0.0), std::move(fn));
}

EventId Simulator::At(SimTime when, Callback fn) {
  return queue_.Schedule(std::max(when, now_), std::move(fn));
}

size_t Simulator::RunUntil(SimTime until) {
  size_t executed = 0;
  while (!queue_.empty()) {
    const SimTime next = queue_.NextTime();
    if (next > until) break;
    now_ = next;
    queue_.RunNext();
    ++executed;
  }
  // Advance the clock to the horizon even if the queue drained early so
  // repeated RunUntil calls observe monotonically increasing time.
  now_ = std::max(now_, until);
  return executed;
}

size_t Simulator::RunAll(size_t max_events) {
  size_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    now_ = queue_.NextTime();
    queue_.RunNext();
    ++executed;
  }
  return executed;
}

PeriodicTimer::PeriodicTimer(Simulator* sim, SimTime period,
                             std::function<void(SimTime)> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start() {
  if (running_) return;
  running_ = true;
  anchor_ = sim_->Now();
  ticks_ = 0;
  Arm();
}

void PeriodicTimer::Stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    sim_->Cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTimer::Arm() {
  // Anchored re-arm: firing n is at anchor + n * period exactly (one
  // rounded multiply), never at "previous firing + period" (n rounded
  // additions, whose error grows with n).
  const SimTime next =
      anchor_ + static_cast<double>(ticks_ + 1) * period_;
  pending_ = sim_->At(next, [this] {
    pending_ = 0;
    ++ticks_;
    if (!running_) return;
    fn_(sim_->Now());
    if (running_) Arm();
  });
}

}  // namespace slacker::sim
