#ifndef SLACKER_SIM_BINARY_HEAP_QUEUE_H_
#define SLACKER_SIM_BINARY_HEAP_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/units.h"

namespace slacker::sim {

/// The pre-timer-wheel event queue, kept verbatim as (a) the reference
/// implementation for the old-vs-new determinism property test and
/// (b) the baseline the `bench/perf_simspeed` harness measures the
/// wheel's speedup against.
///
/// Costs the wheel was built to remove: every Schedule heap-allocates
/// the std::function capture and an unordered_set node, Cancel leaves
/// a tombstone in `cancelled_` until the entry surfaces at the heap
/// top (unbounded under cancel-heavy churn against far-future events),
/// and push/pop are O(log n) moves of 56-byte closures.
class BinaryHeapEventQueue {
 public:
  using EventId = uint64_t;

  EventId Schedule(SimTime when, std::function<void()> fn);

  /// Cancelling an already-fired or unknown id is a no-op and returns
  /// false.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty().
  SimTime NextTime() const;

  /// Pops and runs the earliest pending event; returns its time.
  /// Requires !empty().
  SimTime RunNext();

  /// Tombstones still held for cancelled-but-not-yet-popped events
  /// (the unbounded-growth defect the wheel fixes; exposed so the
  /// regression test can demonstrate the contrast).
  size_t tombstones() const { return cancelled_.size() + pending_.size(); }

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events.
    }
  };

  void SkipCancelled() const;

  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace slacker::sim

#endif  // SLACKER_SIM_BINARY_HEAP_QUEUE_H_
