#ifndef SLACKER_SIM_EVENT_QUEUE_H_
#define SLACKER_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/sim/callback.h"

namespace slacker::sim {

/// Identifies a scheduled event so it can be cancelled. Encodes a pool
/// slot plus a generation tag; ids from fired or cancelled events go
/// stale immediately, so holding one is always safe. Never zero.
using EventId = uint64_t;

/// Time-ordered queue of callbacks — the simulator's hot path.
///
/// Internally a hierarchical timer wheel (kLevels levels of 64 slots,
/// 1 ms quantum) over a slab pool of intrusively linked event nodes:
///
///  - Schedule is O(1): one pool slot reuse (no allocation once the
///    pool is warm; the callback's capture lives inline in the node,
///    see sim::Callback) and one doubly-linked list push.
///  - Cancel is O(1): the id's generation tag is checked against the
///    node and the node is unlinked and recycled on the spot — no
///    tombstone sets that grow with cancel churn.
///  - Pop amortizes O(1): the wheel cursor jumps between occupied
///    slots via per-level bitmaps; far-future events cascade down at
///    most kLevels times.
///
/// Ordering contract (identical to the binary-heap queue this
/// replaced, see BinaryHeapEventQueue): events run in ascending
/// exact `when` (the full double, not the quantized tick), ties broken
/// by Schedule() order, so runs are bit-deterministic regardless of
/// wheel internals. Quantization only affects *bucketing*; events that
/// land in the same 1 ms bucket are ordered by their exact (when, seq)
/// inside the bucket's ready heap before running.
class EventQueue {
 public:
  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `when`. Returns an id usable with
  /// Cancel().
  EventId Schedule(SimTime when, Callback fn);

  /// Cancels a pending event in O(1). Cancelling an already-fired,
  /// already-cancelled, or unknown id is a no-op and returns false.
  /// The event's node (and its callback capture) is released
  /// immediately — a cancel-heavy workload holds no tombstones for
  /// far-future events.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty().
  SimTime NextTime();

  /// Pops and runs the earliest pending event; returns its time.
  /// Requires !empty().
  SimTime RunNext();

  // ---- Introspection (tests and perf benches) ----

  /// Total pool slots ever allocated. Bounded by the peak number of
  /// *concurrently pending* events, not by cumulative schedule/cancel
  /// traffic — the regression guard for Cancel's memory behavior.
  size_t allocated_nodes() const { return pool_.size(); }

  /// Cancelled events whose node is still parked in the due-bucket
  /// heap (freed when popped). Bounded by the size of the current
  /// 1 ms bucket, not by total cancels.
  size_t ready_tombstones() const { return ready_dead_; }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr uint64_t kSlotsPerLevel = 1ull << kSlotBits;  // 64
  static constexpr uint64_t kSlotMask = kSlotsPerLevel - 1;
  static constexpr int kLevels = 8;  // 64^8 ticks ≈ 8900 sim-years @1ms.
  static constexpr uint32_t kNil = 0xffffffffu;
  /// Wheel quantum: 1 ms of simulated time per tick. Coarse enough
  /// that steady-state events (sub-second interarrivals) insert at the
  /// lowest wheel levels with few cascades; ordering is unaffected
  /// because ties within a bucket resolve on the exact (when, seq).
  static constexpr double kTicksPerSecond = 1e3;

  enum class NodeState : uint8_t {
    kFree,       // On the free list.
    kWheel,      // Linked into a wheel slot.
    kReady,      // Referenced by an entry in the ready heap.
    kCancelled,  // Cancelled while ready; freed when its entry pops.
  };

  struct Node {
    SimTime when = 0.0;
    uint64_t tick = 0;
    uint64_t seq = 0;
    uint32_t prev = kNil;  // Doubly linked within a wheel slot; `next`
    uint32_t next = kNil;  // doubles as the free-list link.
    uint32_t generation = 1;
    uint16_t slot = 0;  // Global slot index (level * 64 + slot-in-level).
    NodeState state = NodeState::kFree;
    Callback fn;
  };

  /// Heap entry for events due at or before the wheel cursor. Carries
  /// (when, seq) by value so ordering never touches the pool.
  struct ReadyEntry {
    SimTime when;
    uint64_t seq;
    uint32_t node;
  };
  struct ReadyLater {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO among simultaneous events.
    }
  };

  static uint64_t TickFor(SimTime when);

  uint32_t AllocNode();
  void FreeNode(uint32_t idx);

  /// Routes a node to the ready heap (tick <= cursor) or a wheel slot.
  void FileNode(uint32_t idx);
  void InsertWheel(uint32_t idx);
  void UnlinkWheel(uint32_t idx);
  void PushReady(uint32_t idx);

  /// Pops cancelled entries off the ready heap, freeing their nodes.
  void DropCancelledReadyTop();
  /// Ensures the ready heap's top is the earliest live event, advancing
  /// the wheel cursor (draining/cascading slots) as needed. Requires
  /// !empty().
  void EnsureReady();
  /// Advances the cursor to the next occupied slot: drains a level-0
  /// slot into the ready heap, or cascades one higher-level slot down.
  void AdvanceWheel();
  /// Smallest lower bound over every level's nearest occupied slot
  /// (~0ull when the wheel is empty). EnsureReady uses it to detect
  /// slots that may still hold events sharing the ready top's tick.
  uint64_t MinWheelBound() const;

  std::vector<Node> pool_;
  uint32_t free_head_ = kNil;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  size_t wheel_count_ = 0;  // Live nodes currently in wheel slots.
  uint64_t current_tick_ = 0;
  uint32_t slots_[kLevels * kSlotsPerLevel];
  uint64_t occupied_[kLevels];  // Bit s of level l: slot l*64+s nonempty.
  std::vector<ReadyEntry> ready_;  // Binary min-heap by (when, seq).
  size_t ready_dead_ = 0;
};

}  // namespace slacker::sim

#endif  // SLACKER_SIM_EVENT_QUEUE_H_
