#ifndef SLACKER_SIM_EVENT_QUEUE_H_
#define SLACKER_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/units.h"

namespace slacker::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = uint64_t;

/// Time-ordered queue of callbacks. Ties are broken by insertion order
/// so that runs are deterministic regardless of heap internals.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`. Returns an id usable with
  /// Cancel().
  EventId Schedule(SimTime when, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id
  /// is a no-op and returns false.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty().
  SimTime NextTime() const;

  /// Pops and runs the earliest pending event; returns its time.
  /// Requires !empty().
  SimTime RunNext();

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among simultaneous events.
    }
  };

  void SkipCancelled() const;

  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace slacker::sim

#endif  // SLACKER_SIM_EVENT_QUEUE_H_
