#ifndef SLACKER_SIM_SIMULATOR_H_
#define SLACKER_SIM_SIMULATOR_H_

#include <functional>
#include <limits>

#include "src/sim/event_queue.h"

namespace slacker::sim {

/// Discrete-event simulation driver: a virtual clock plus an event
/// queue. Single-threaded by design — all model code runs inline in
/// event callbacks, so no synchronization is needed anywhere in the
/// stack and runs are bit-reproducible.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0;
  /// negative delays are clamped to 0, i.e., "run next").
  EventId After(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when` (clamped to Now()).
  EventId At(SimTime when, std::function<void()> fn);

  bool Cancel(EventId id) { return queue_.Cancel(id); }

  /// Runs events until the queue is empty or the clock passes `until`.
  /// Events scheduled exactly at `until` do run. Returns the number of
  /// events executed.
  size_t RunUntil(SimTime until);

  /// Runs until the queue is empty (use only when the model is known to
  /// quiesce). Returns the number of events executed.
  size_t RunAll(size_t max_events = std::numeric_limits<size_t>::max());

  /// Pending event count (excluding cancelled).
  size_t PendingEvents() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
};

/// Fires a callback every `period` seconds until stopped or the owner
/// is destroyed. The controller tick (1 s) and time-series samplers are
/// built on this.
class PeriodicTimer {
 public:
  /// `fn` receives the firing time. The first firing is at
  /// start + period (not immediately), matching a sampling loop.
  PeriodicTimer(Simulator* sim, SimTime period,
                std::function<void(SimTime)> fn);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }

 private:
  void Arm();

  Simulator* sim_;
  SimTime period_;
  std::function<void(SimTime)> fn_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace slacker::sim

#endif  // SLACKER_SIM_SIMULATOR_H_
