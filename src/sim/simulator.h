#ifndef SLACKER_SIM_SIMULATOR_H_
#define SLACKER_SIM_SIMULATOR_H_

#include <functional>
#include <limits>

#include "src/sim/callback.h"
#include "src/sim/event_queue.h"

namespace slacker::sim {

/// Discrete-event simulation driver: a virtual clock plus an event
/// queue. Single-threaded by design — all model code runs inline in
/// event callbacks, so no synchronization is needed anywhere in the
/// stack and runs are bit-reproducible.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0;
  /// negative delays are clamped to 0, i.e., "run next"). `fn` is any
  /// void() callable; captures up to Callback::kInlineBytes are stored
  /// without allocating.
  EventId After(SimTime delay, Callback fn);

  /// Schedules `fn` at absolute time `when` (clamped to Now()).
  EventId At(SimTime when, Callback fn);

  bool Cancel(EventId id) { return queue_.Cancel(id); }

  /// Runs events until the queue is empty or the clock passes `until`.
  ///
  /// Boundary contract: events with time exactly `until` run in *this*
  /// call — including events scheduled at `until` by callbacks that
  /// are themselves running at `until` (the loop re-consults the queue
  /// after every callback, so a re-entrantly scheduled horizon event
  /// can neither be skipped nor deferred to the next call, and each
  /// runs exactly once). On return Now() == max(Now(), until) even if
  /// the queue drained early, so repeated calls observe monotonically
  /// increasing time. Returns the number of events executed.
  size_t RunUntil(SimTime until);

  /// Runs until the queue is empty (use only when the model is known to
  /// quiesce). Returns the number of events executed.
  size_t RunAll(size_t max_events = std::numeric_limits<size_t>::max());

  /// Pending event count (excluding cancelled).
  size_t PendingEvents() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
};

/// Fires a callback every `period` seconds until stopped or the owner
/// is destroyed. The controller tick (1 s) and time-series samplers are
/// built on this.
///
/// Firing times are anchored: the n-th firing after Start() is at
/// exactly `start + n * period`, computed from the anchor each time
/// rather than by adding `period` to the previous firing. Re-arming
/// with `now + period` accumulates one rounding error per tick, which
/// desynchronizes long-horizon samplers from the controller tick by
/// whole ticks at fig14 horizons; the anchored form's error stays one
/// multiplication's rounding regardless of tick count. Stop()+Start()
/// re-anchors at the current time.
class PeriodicTimer {
 public:
  /// `fn` receives the firing time. The first firing is at
  /// start + period (not immediately), matching a sampling loop.
  PeriodicTimer(Simulator* sim, SimTime period,
                std::function<void(SimTime)> fn);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }

 private:
  void Arm();

  Simulator* sim_;
  SimTime period_;
  std::function<void(SimTime)> fn_;
  EventId pending_ = 0;
  bool running_ = false;
  SimTime anchor_ = 0.0;
  uint64_t ticks_ = 0;  // Firings completed since the last Start().
};

}  // namespace slacker::sim

#endif  // SLACKER_SIM_SIMULATOR_H_
