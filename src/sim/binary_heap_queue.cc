#include "src/sim/binary_heap_queue.h"

#include <cassert>
#include <utility>

namespace slacker::sim {

BinaryHeapEventQueue::EventId BinaryHeapEventQueue::Schedule(
    SimTime when, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(fn)});
  pending_.insert(id);
  ++live_count_;
  return id;
}

bool BinaryHeapEventQueue::Cancel(EventId id) {
  // Only ids still pending may be cancelled; fired or unknown ids are
  // no-ops so callers can hold stale handles safely.
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void BinaryHeapEventQueue::SkipCancelled() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime BinaryHeapEventQueue::NextTime() const {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.top().when;
}

SimTime BinaryHeapEventQueue::RunNext() {
  SkipCancelled();
  assert(!heap_.empty());
  // Move the event out before running: the callback may schedule or
  // cancel other events, mutating the heap.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  pending_.erase(event.id);
  --live_count_;
  event.fn();
  return event.when;
}

}  // namespace slacker::sim
