#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace slacker::sim {

namespace {
/// Ticks are capped so the double->uint64 conversion in TickFor stays
/// in range (conversion of an out-of-range double is UB). 1e18 ms is
/// ~31 million sim-years — events beyond it still run, they just park
/// in the top wheel level and re-cascade as the cursor approaches.
constexpr double kMaxTickDouble = 1e18;
constexpr uint64_t kMaxTick = 1000000000000000000ull;
}  // namespace

EventQueue::EventQueue() {
  for (auto& head : slots_) head = kNil;
  for (auto& word : occupied_) word = 0;
}

uint64_t EventQueue::TickFor(SimTime when) {
  // Negative (and NaN) times bucket at tick 0: they are due
  // immediately, and their exact `when` still orders them in the ready
  // heap. Multiplication by a positive constant and floor are both
  // monotone, so tick order never contradicts `when` order.
  if (!(when > 0.0)) return 0;
  const double scaled = when * kTicksPerSecond;
  if (scaled >= kMaxTickDouble) return kMaxTick;
  return static_cast<uint64_t>(scaled);
}

uint32_t EventQueue::AllocNode() {
  if (free_head_ != kNil) {
    const uint32_t idx = free_head_;
    free_head_ = pool_[idx].next;
    return idx;
  }
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void EventQueue::FreeNode(uint32_t idx) {
  Node& n = pool_[idx];
  n.fn.Reset();
  n.state = NodeState::kFree;
  // Bumping the generation invalidates every EventId handed out for
  // this slot; 0 is skipped so a live id is never zero.
  if (++n.generation == 0) n.generation = 1;
  n.next = free_head_;
  n.prev = kNil;
  free_head_ = idx;
}

EventId EventQueue::Schedule(SimTime when, Callback fn) {
  const uint32_t idx = AllocNode();
  Node& n = pool_[idx];
  n.when = when;
  n.tick = TickFor(when);
  n.seq = next_seq_++;
  n.fn = std::move(fn);
  FileNode(idx);
  ++live_count_;
  return (static_cast<uint64_t>(idx) << 32) | pool_[idx].generation;
}

void EventQueue::FileNode(uint32_t idx) {
  if (pool_[idx].tick <= current_tick_) {
    PushReady(idx);
  } else {
    InsertWheel(idx);
  }
}

void EventQueue::PushReady(uint32_t idx) {
  Node& n = pool_[idx];
  n.state = NodeState::kReady;
  ready_.push_back(ReadyEntry{n.when, n.seq, idx});
  std::push_heap(ready_.begin(), ready_.end(), ReadyLater{});
}

void EventQueue::InsertWheel(uint32_t idx) {
  Node& n = pool_[idx];
  const uint64_t tick = n.tick;
  // Smallest level whose 64-slot window, anchored at the cursor,
  // contains the tick. Invariant: every node at level l lives in an
  // absolute slot in [cursor_l, cursor_l + 64), so a slot index within
  // a level identifies a unique absolute slot — no era aliasing.
  int level = 0;
  while (level < kLevels - 1 &&
         (tick >> (kSlotBits * level)) -
                 (current_tick_ >> (kSlotBits * level)) >=
             kSlotsPerLevel) {
    ++level;
  }
  const int shift = kSlotBits * level;
  uint64_t slot_abs = tick >> shift;
  if (slot_abs - (current_tick_ >> shift) >= kSlotsPerLevel) {
    // Beyond the whole wheel's horizon: park in the farthest top-level
    // slot; the cascade re-files it as the cursor approaches.
    slot_abs = (current_tick_ >> shift) + kSlotsPerLevel - 1;
  }
  const uint16_t s = static_cast<uint16_t>(level * kSlotsPerLevel +
                                           (slot_abs & kSlotMask));
  n.state = NodeState::kWheel;
  n.slot = s;
  n.prev = kNil;
  n.next = slots_[s];
  if (slots_[s] != kNil) pool_[slots_[s]].prev = idx;
  slots_[s] = idx;
  occupied_[level] |= 1ull << (slot_abs & kSlotMask);
  ++wheel_count_;
}

void EventQueue::UnlinkWheel(uint32_t idx) {
  Node& n = pool_[idx];
  if (n.prev != kNil) {
    pool_[n.prev].next = n.next;
  } else {
    slots_[n.slot] = n.next;
  }
  if (n.next != kNil) pool_[n.next].prev = n.prev;
  if (slots_[n.slot] == kNil) {
    occupied_[n.slot >> kSlotBits] &= ~(1ull << (n.slot & kSlotMask));
  }
  --wheel_count_;
}

bool EventQueue::Cancel(EventId id) {
  const uint32_t idx = static_cast<uint32_t>(id >> 32);
  const uint32_t gen = static_cast<uint32_t>(id);
  if (idx >= pool_.size()) return false;
  Node& n = pool_[idx];
  if (n.generation != gen) return false;
  switch (n.state) {
    case NodeState::kWheel:
      UnlinkWheel(idx);
      FreeNode(idx);
      --live_count_;
      return true;
    case NodeState::kReady:
      // The node is referenced by a ready-heap entry we cannot cheaply
      // extract; drop the capture now and let the entry's pop free the
      // slot. Bounded by the current bucket, not by cancel volume.
      n.fn.Reset();
      n.state = NodeState::kCancelled;
      ++ready_dead_;
      --live_count_;
      return true;
    case NodeState::kFree:
    case NodeState::kCancelled:
      return false;
  }
  return false;
}

void EventQueue::DropCancelledReadyTop() {
  while (!ready_.empty() &&
         pool_[ready_.front().node].state == NodeState::kCancelled) {
    const uint32_t idx = ready_.front().node;
    std::pop_heap(ready_.begin(), ready_.end(), ReadyLater{});
    ready_.pop_back();
    FreeNode(idx);
    --ready_dead_;
  }
}

void EventQueue::AdvanceWheel() {
  // Pick the level whose nearest occupied slot has the smallest lower
  // bound. Rotating each level's bitmap by its cursor position turns
  // "nearest ahead of the cursor" into countr_zero.
  //
  // Ties between levels are REAL, not cosmetic: when a tick lies on a
  // level-l slot boundary (tick % 64^l == 0), a same-tick event can
  // simultaneously sit in a level-0 slot with bound == tick and in a
  // level-l slot with the same bound. Which one this function processes
  // first does not matter — correctness comes from EnsureReady flushing
  // *every* slot whose bound equals the cursor before any event runs,
  // so all same-tick events meet in the ready heap and are ordered by
  // their exact (when, seq) there.
  assert(wheel_count_ > 0);
  int best_level = -1;
  uint64_t best_abs = 0;
  uint64_t best_bound = ~0ull;
  for (int level = 0; level < kLevels; ++level) {
    const uint64_t occ = occupied_[level];
    if (occ == 0) continue;
    const uint64_t cursor = current_tick_ >> (kSlotBits * level);
    const uint64_t rotated =
        std::rotr(occ, static_cast<int>(cursor & kSlotMask));
    const uint64_t abs =
        cursor + static_cast<uint64_t>(std::countr_zero(rotated));
    const uint64_t bound =
        std::max(abs << (kSlotBits * level), current_tick_);
    if (bound < best_bound) {
      best_bound = bound;
      best_abs = abs;
      best_level = level;
    }
  }
  assert(best_level >= 0);

  // Detach the chosen slot's whole list.
  const uint16_t s = static_cast<uint16_t>(
      best_level * kSlotsPerLevel + (best_abs & kSlotMask));
  uint32_t head = slots_[s];
  slots_[s] = kNil;
  occupied_[best_level] &= ~(1ull << (best_abs & kSlotMask));

  // Advancing to the slot's bound skips nothing: `bound` is a lower
  // bound on every pending event's tick (it was the global minimum).
  current_tick_ = best_bound;

  if (best_level == 0) {
    // Level-0 slots are exact ticks: everything here is due.
    while (head != kNil) {
      const uint32_t idx = head;
      head = pool_[idx].next;
      --wheel_count_;
      PushReady(idx);
    }
    return;
  }
  // Cascade: re-file each node one or more levels down (or into the
  // ready heap if its tick is exactly the new cursor). Each node drops
  // at least one level per cascade, so total cascade work per event is
  // bounded by kLevels.
  while (head != kNil) {
    const uint32_t idx = head;
    head = pool_[idx].next;
    --wheel_count_;
    FileNode(idx);
  }
}

uint64_t EventQueue::MinWheelBound() const {
  uint64_t best = ~0ull;
  for (int level = 0; level < kLevels; ++level) {
    const uint64_t occ = occupied_[level];
    if (occ == 0) continue;
    const uint64_t cursor = current_tick_ >> (kSlotBits * level);
    const uint64_t rotated =
        std::rotr(occ, static_cast<int>(cursor & kSlotMask));
    const uint64_t abs =
        cursor + static_cast<uint64_t>(std::countr_zero(rotated));
    const uint64_t bound =
        std::max(abs << (kSlotBits * level), current_tick_);
    if (bound < best) best = bound;
  }
  return best;
}

void EventQueue::EnsureReady() {
  DropCancelledReadyTop();
  // Fast path: if the ready heap is already populated, every wheel
  // slot's bound exceeds the cursor — the loop below never exits
  // otherwise, and Schedule/Cancel preserve that invariant (a fresh
  // insert never lands in a slot straddling the cursor: if its tick
  // shared the cursor's slot at level l, level l-1's window would have
  // contained it).
  if (!ready_.empty() || wheel_count_ == 0) return;
  // Keep advancing until the ready heap holds something AND no wheel
  // slot's bound is <= the cursor. The second condition is the subtle
  // one: a slot whose bound equals the cursor may still hold events
  // with the *same tick* as an entry already in the ready heap (see
  // AdvanceWheel's tie comment); they must reach the heap before any
  // pop, or a larger-`when` event in the same 1 ms bucket could run
  // first. Termination: each flush either empties a level-0 slot or
  // cascades every node in a higher-level slot at least one level
  // down.
  do {
    AdvanceWheel();
    DropCancelledReadyTop();
  } while (wheel_count_ > 0 &&
           (ready_.empty() || MinWheelBound() <= current_tick_));
}

SimTime EventQueue::NextTime() {
  assert(!empty());
  EnsureReady();
  assert(!ready_.empty());
  return ready_.front().when;
}

SimTime EventQueue::RunNext() {
  assert(!empty());
  EnsureReady();
  assert(!ready_.empty());
  const ReadyEntry top = ready_.front();
  std::pop_heap(ready_.begin(), ready_.end(), ReadyLater{});
  ready_.pop_back();
  Node& n = pool_[top.node];
  // Move the callback out and recycle the node *before* running: the
  // callback may schedule new events (reusing this very slot) or grow
  // the pool.
  Callback fn = std::move(n.fn);
  FreeNode(top.node);
  --live_count_;
  fn();
  return top.when;
}

}  // namespace slacker::sim
