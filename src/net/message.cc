#include "src/net/message.h"

#include "src/common/bytes.h"
#include "src/net/wire.h"

namespace slacker::net {

std::vector<uint8_t> EncodeMessage(const Message& message) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(message.type));
  writer.PutVarint64(message.tenant_id);
  writer.PutVarint64(message.target_server);
  writer.PutVarint64(message.lsn);
  writer.PutVarint64(message.chunk_seq);
  writer.PutVarint64(message.payload_bytes);
  writer.PutFixed64(message.digest);
  writer.PutFixed32(message.chunk_crc);
  writer.PutU8(message.resume ? 1 : 0);
  writer.PutVarint64(message.resume_key);
  writer.PutString(message.error);
  writer.PutVarint64(message.config.page_bytes);
  writer.PutVarint64(message.config.record_bytes);
  writer.PutVarint64(message.config.record_count);
  writer.PutVarint64(message.config.buffer_pool_bytes);
  writer.PutVarint64(message.config.value_seed);
  writer.PutDouble(message.config.cpu_per_op);
  writer.PutDouble(message.config.commit_latency);
  writer.PutVarint64(message.rows.size());
  for (const storage::Record& r : message.rows) {
    writer.PutVarint64(r.key);
    writer.PutVarint64(r.lsn);
    writer.PutFixed64(r.digest);
  }
  writer.PutVarint64(message.log_records.size());
  for (const wal::LogRecord& r : message.log_records) {
    r.EncodeTo(&writer);
  }
  // Extensions: only non-default values append one, so every message
  // the legacy raw pipeline produces is byte-identical to the
  // pre-codec format (golden trace digests depend on wire sizes).
  // Decoders dispatch on the leading magic byte of each extension.
  if (message.frame.codec != codec::Codec::kRaw) {
    message.frame.EncodeTo(&writer);
    writer.PutVarint64(message.removed_keys.size());
    for (uint64_t key : message.removed_keys) {
      writer.PutVarint64(key);
    }
  }
  if (message.negotiation.software_version != 0) {
    message.negotiation.EncodeTo(&writer);
  }
  if (message.range_scoped) {
    writer.PutU8(kRangeScopeMagic);
    writer.PutVarint64(message.range_lo);
    writer.PutVarint64(message.range_hi);
  }
  return EncodeFrame(writer.Release());
}

Status DecodeMessage(const std::vector<uint8_t>& frame, Message* out) {
  std::vector<uint8_t> payload;
  SLACKER_RETURN_IF_ERROR(DecodeFrame(frame, &payload));
  ByteReader reader(payload);
  uint8_t type;
  SLACKER_RETURN_IF_ERROR(reader.GetU8(&type));
  if (type < 1 || type > 14) return Status::Corruption("bad message type");
  out->type = static_cast<MessageType>(type);
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->tenant_id));
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->target_server));
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->lsn));
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->chunk_seq));
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->payload_bytes));
  SLACKER_RETURN_IF_ERROR(reader.GetFixed64(&out->digest));
  SLACKER_RETURN_IF_ERROR(reader.GetFixed32(&out->chunk_crc));
  uint8_t resume;
  SLACKER_RETURN_IF_ERROR(reader.GetU8(&resume));
  out->resume = resume != 0;
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->resume_key));
  SLACKER_RETURN_IF_ERROR(reader.GetString(&out->error));
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->config.page_bytes));
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->config.record_bytes));
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->config.record_count));
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->config.buffer_pool_bytes));
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->config.value_seed));
  SLACKER_RETURN_IF_ERROR(reader.GetDouble(&out->config.cpu_per_op));
  SLACKER_RETURN_IF_ERROR(reader.GetDouble(&out->config.commit_latency));
  uint64_t row_count;
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&row_count));
  out->rows.clear();
  out->rows.reserve(row_count);
  for (uint64_t i = 0; i < row_count; ++i) {
    storage::Record r;
    SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&r.key));
    SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&r.lsn));
    SLACKER_RETURN_IF_ERROR(reader.GetFixed64(&r.digest));
    out->rows.push_back(r);
  }
  uint64_t log_count;
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&log_count));
  out->log_records.clear();
  out->log_records.reserve(log_count);
  for (uint64_t i = 0; i < log_count; ++i) {
    wal::LogRecord r;
    SLACKER_RETURN_IF_ERROR(wal::LogRecord::DecodeFrom(&reader, &r));
    out->log_records.push_back(r);
  }
  out->frame = codec::FrameHeader();
  out->removed_keys.clear();
  out->negotiation = NegotiationInfo();
  out->range_scoped = false;
  out->range_lo = 0;
  out->range_hi = 0;
  bool saw_codec_ext = false;
  bool saw_negotiation_ext = false;
  bool saw_range_ext = false;
  while (!reader.exhausted()) {
    uint8_t magic;
    SLACKER_RETURN_IF_ERROR(reader.PeekU8(&magic));
    if (magic == codec::kCodecFrameMagic) {
      if (saw_codec_ext) {
        return Status::Corruption("duplicate codec extension");
      }
      saw_codec_ext = true;
      SLACKER_RETURN_IF_ERROR(out->frame.DecodeFrom(&reader));
      if (out->frame.codec == codec::Codec::kRaw) {
        // A raw frame is never encoded; its presence means corruption.
        return Status::Corruption("unexpected raw codec extension");
      }
      uint64_t removed_count;
      SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&removed_count));
      out->removed_keys.reserve(removed_count);
      for (uint64_t i = 0; i < removed_count; ++i) {
        uint64_t key;
        SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&key));
        out->removed_keys.push_back(key);
      }
    } else if (magic == kNegotiationMagic) {
      if (saw_negotiation_ext) {
        return Status::Corruption("duplicate negotiation extension");
      }
      saw_negotiation_ext = true;
      SLACKER_RETURN_IF_ERROR(out->negotiation.DecodeFrom(&reader));
      if (out->negotiation.software_version == 0) {
        // Version 0 is never encoded; its presence means corruption.
        return Status::Corruption("unexpected legacy negotiation extension");
      }
    } else if (magic == kRangeScopeMagic) {
      if (saw_range_ext) {
        return Status::Corruption("duplicate range-scope extension");
      }
      saw_range_ext = true;
      uint8_t consumed;
      SLACKER_RETURN_IF_ERROR(reader.GetU8(&consumed));
      out->range_scoped = true;
      SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->range_lo));
      SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&out->range_hi));
    } else {
      return Status::Corruption("trailing bytes in message");
    }
  }
  return Status::Ok();
}

}  // namespace slacker::net
