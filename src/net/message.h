#ifndef SLACKER_NET_MESSAGE_H_
#define SLACKER_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/codec/frame.h"
#include "src/common/status.h"
#include "src/net/negotiation.h"
#include "src/wal/log_record.h"

namespace slacker::net {

/// Extension magic for the range-scope trailer (codec frames use 0xC5,
/// negotiation 0xC6).
inline constexpr uint8_t kRangeScopeMagic = 0xC7;

/// Message types exchanged between Slacker migration controllers. The
/// paper uses "a simple format based on Google's protocol buffers"
/// (§2.2); this hand-rolled tagged encoding plays that role.
enum class MessageType : uint8_t {
  kMigrateRequest = 1,   // Controller → controller: start migrating.
  kMigrateAccept = 2,    // Target agrees and allocated the tenant slot.
  kSnapshotBegin = 3,    // Snapshot stream starts (carries start LSN).
  kSnapshotChunk = 4,    // One chunk of the fuzzy snapshot.
  kSnapshotEnd = 5,      // Snapshot complete (carries end LSN).
  kSnapshotAck = 6,      // Target finished ingesting the snapshot.
  kDeltaBatch = 7,       // A round of binlog records.
  kDeltaAck = 8,         // Target applied the round (carries LSN).
  kHandoverRequest = 9,  // Source frozen; final delta + digest attached.
  kHandoverAck = 10,     // Target applied the final delta (its digest).
  kHandoverCommit = 11,  // Digests matched; target becomes authoritative.
  kMigrateAbort = 12,
  kSnapshotResume = 13,  // Target has durably staged chunks; resume offer.
  kSnapshotNack = 14,    // Target saw a gap/corrupt chunk; retransmit.
};

/// Tenant parameters shipped in kMigrateRequest so the target can
/// instantiate an identical instance (the my.cnf that travels with the
/// data directory).
struct TenantWireConfig {
  uint64_t page_bytes = 0;
  uint64_t record_bytes = 0;
  uint64_t record_count = 0;
  uint64_t buffer_pool_bytes = 0;
  uint64_t value_seed = 0;
  double cpu_per_op = 0.0;
  double commit_latency = 0.0;

  bool operator==(const TenantWireConfig& other) const = default;
};

struct Message {
  MessageType type = MessageType::kMigrateRequest;
  uint64_t tenant_id = 0;
  /// kMigrateRequest: destination server id.
  uint64_t target_server = 0;
  /// LSN bookmark (kSnapshotBegin/End, kDeltaAck, kHandoverRequest).
  uint64_t lsn = 0;
  /// kSnapshotChunk: chunk ordinal.
  uint64_t chunk_seq = 0;
  /// kSnapshotChunk / kDeltaBatch: logical payload size this message
  /// represents on the wire (the compact digest encoding stands in for
  /// the real row bytes).
  uint64_t payload_bytes = 0;
  /// kHandoverRequest/kHandoverAck: state digest for convergence check.
  uint64_t digest = 0;
  /// kSnapshotChunk: CRC-32C over the chunk's packed rows, so the
  /// target can tell a corrupt-but-decodable chunk from a good one and
  /// NACK it for retransmission.
  uint32_t chunk_crc = 0;
  /// kMigrateRequest: the source is willing to resume from durably
  /// staged chunks of an earlier, interrupted attempt.
  bool resume = false;
  /// kSnapshotResume: first key the source still needs to stream
  /// (everything below it is staged at the target). kSnapshotBegin
  /// echoes it when the source accepts the resume.
  uint64_t resume_key = 0;
  /// kMigrateAbort: error text.
  std::string error;
  /// kMigrateRequest only.
  TenantWireConfig config;
  /// kSnapshotChunk: row images.
  std::vector<storage::Record> rows;
  /// kDeltaBatch / kHandoverRequest: log records.
  std::vector<wal::LogRecord> log_records;
  /// kSnapshotChunk / kDeltaBatch: codec frame header. A default
  /// (kRaw) frame encodes to nothing, keeping the raw-path wire bytes
  /// identical to the pre-codec format.
  codec::FrameHeader frame;
  /// kSnapshotChunk with frame.codec == kDelta only: keys present in
  /// the delta base but absent from the re-read chunk.
  std::vector<uint64_t> removed_keys;
  /// Control handshake (kMigrateRequest, kMigrateAccept,
  /// kSnapshotResume): the sender's software version and feature mask.
  /// A default (version 0) negotiation encodes to nothing, keeping the
  /// legacy wire bytes identical.
  NegotiationInfo negotiation;
  /// kMigrateRequest: this migration moves only keys in
  /// [range_lo, range_hi) — one unit of a fluid, range-granular
  /// migration (DESIGN.md §16). Whole-tenant migrations leave it
  /// false, which encodes to nothing (wire bytes stay identical).
  bool range_scoped = false;
  uint64_t range_lo = 0;
  uint64_t range_hi = 0;

  bool operator==(const Message& other) const = default;

  /// Bytes this message occupies on the wire at the payload level: the
  /// encoded size for compressed/delta frames, the logical size
  /// otherwise. Throttles and drop ledgers meter this; progress
  /// tracking stays on payload_bytes (logical).
  uint64_t wire_payload_bytes() const {
    return frame.codec == codec::Codec::kRaw ? payload_bytes
                                             : frame.encoded_bytes;
  }
};

/// Serializes a message into a checksummed frame.
std::vector<uint8_t> EncodeMessage(const Message& message);
/// Parses a frame produced by EncodeMessage.
Status DecodeMessage(const std::vector<uint8_t>& frame, Message* out);

}  // namespace slacker::net

#endif  // SLACKER_NET_MESSAGE_H_
