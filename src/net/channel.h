#ifndef SLACKER_NET_CHANNEL_H_
#define SLACKER_NET_CHANNEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/net/message.h"
#include "src/resource/network_link.h"

namespace slacker::net {

/// A peer-to-peer control/data channel between two Slacker nodes,
/// riding a simulated NetworkLink. Messages are serialized to their
/// real wire size (so the gigabit link is charged the true byte count)
/// and decoded at the receiver — a corrupted or undecodable frame is a
/// bug, surfaced through the error handler.
class Channel {
 public:
  using Handler = std::function<void(const Message&)>;
  using ErrorHandler = std::function<void(const Status&)>;

  /// `link` carries this direction of the channel and must outlive it.
  Channel(sim::Simulator* sim, resource::NetworkLink* link);

  /// Installs the receiver-side message handler.
  void OnMessage(Handler handler);
  void OnError(ErrorHandler handler);

  /// Fault-injection hooks for tests and chaos experiments.
  /// `DeliveryFilter` runs on each decoded message at delivery; return
  /// false to drop it (a lost datagram / dead peer). It may also mutate
  /// the message (a buggy peer).
  using DeliveryFilter = std::function<bool(Message*)>;
  void SetDeliveryFilter(DeliveryFilter filter);
  /// `FrameCorrupter` runs on the raw frame bytes before decoding
  /// (simulated bit rot); corrupted frames fail the CRC and surface
  /// through OnError.
  using FrameCorrupter = std::function<void(std::vector<uint8_t>*)>;
  void SetFrameCorrupter(FrameCorrupter corrupter);

  /// Identity of a message the channel ate (undecodable frame or
  /// delivery-filter drop), captured at Send time so even a frame that
  /// cannot be decoded is still attributable. Feeds the invariant
  /// auditor's conservation ledger.
  struct DropInfo {
    MessageType type = MessageType::kMigrateRequest;
    uint64_t tenant_id = 0;
    uint64_t payload_bytes = 0;
    /// Encoded (post-codec) payload bytes; equals payload_bytes for
    /// raw frames. The wire-byte leg of the conservation ledger.
    uint64_t wire_payload_bytes = 0;
  };
  using DropHandler = std::function<void(const DropInfo&)>;
  void OnDrop(DropHandler handler);

  /// Serializes and transmits; the receiver's handler fires on arrival.
  /// `sent_bytes` (optional out) reports the frame size put on the wire.
  void Send(const Message& message, uint64_t* sent_bytes = nullptr);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  sim::Simulator* sim_;
  resource::NetworkLink* link_;
  Handler handler_;
  ErrorHandler error_handler_;
  DeliveryFilter delivery_filter_;
  FrameCorrupter frame_corrupter_;
  DropHandler drop_handler_;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace slacker::net

#endif  // SLACKER_NET_CHANNEL_H_
