#include "src/net/channel.h"

#include <utility>

#include "src/common/logging.h"

namespace slacker::net {

Channel::Channel(sim::Simulator* sim, resource::NetworkLink* link)
    : sim_(sim), link_(link) {}

void Channel::OnMessage(Handler handler) { handler_ = std::move(handler); }
void Channel::OnError(ErrorHandler handler) {
  error_handler_ = std::move(handler);
}
void Channel::SetDeliveryFilter(DeliveryFilter filter) {
  delivery_filter_ = std::move(filter);
}
void Channel::SetFrameCorrupter(FrameCorrupter corrupter) {
  frame_corrupter_ = std::move(corrupter);
}
void Channel::OnDrop(DropHandler handler) {
  drop_handler_ = std::move(handler);
}

void Channel::Send(const Message& message, uint64_t* sent_bytes) {
  std::vector<uint8_t> frame = EncodeMessage(message);
  // Snapshot chunks represent far more logical bytes than their compact
  // digest encoding; charge the wire for the *encoded* payload (equal
  // to the logical payload for raw frames) so the link model sees the
  // true post-codec migration volume.
  const uint64_t wire_bytes =
      frame.size() + message.wire_payload_bytes();
  ++messages_sent_;
  bytes_sent_ += wire_bytes;
  if (sent_bytes != nullptr) *sent_bytes = wire_bytes;
  // Captured at send time: a frame the corrupter renders undecodable
  // can still be attributed to its message when reporting the drop.
  DropInfo info;
  info.type = message.type;
  info.tenant_id = message.tenant_id;
  info.payload_bytes = message.payload_bytes;
  info.wire_payload_bytes = message.wire_payload_bytes();
  link_->Send(wire_bytes, [this, info, frame = std::move(frame)]() mutable {
    if (frame_corrupter_) frame_corrupter_(&frame);
    Message received;
    const Status status = DecodeMessage(frame, &received);
    if (!status.ok()) {
      SLACKER_LOG_ERROR << "channel decode failed: " << status.ToString();
      if (drop_handler_) drop_handler_(info);
      if (error_handler_) error_handler_(status);
      return;
    }
    if (delivery_filter_ && !delivery_filter_(&received)) {
      ++messages_dropped_;
      if (drop_handler_) drop_handler_(info);
      return;
    }
    if (handler_) handler_(received);
  });
}

}  // namespace slacker::net
