#ifndef SLACKER_NET_WIRE_H_
#define SLACKER_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace slacker::net {

/// Frame layout: [magic u32][payload length u32][crc32c u32][payload].
/// The CRC covers the payload; DecodeFrame rejects bad magic, short
/// input, and checksum mismatches.
constexpr uint32_t kFrameMagic = 0x534c4b52;  // "SLKR"
constexpr size_t kFrameHeaderBytes = 12;

/// Wraps a payload in a checksummed frame.
std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload);

/// Unwraps one frame from `data` (which must contain exactly one
/// frame); on success stores the payload in `out`.
Status DecodeFrame(const std::vector<uint8_t>& data,
                   std::vector<uint8_t>* out);

}  // namespace slacker::net

#endif  // SLACKER_NET_WIRE_H_
