#include "src/net/wire.h"

#include "src/common/bytes.h"
#include "src/common/checksum.h"

namespace slacker::net {

std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload) {
  ByteWriter writer;
  writer.PutFixed32(kFrameMagic);
  writer.PutFixed32(static_cast<uint32_t>(payload.size()));
  writer.PutFixed32(Crc32c(payload));
  writer.PutBytes(payload.data(), payload.size());
  return writer.Release();
}

Status DecodeFrame(const std::vector<uint8_t>& data,
                   std::vector<uint8_t>* out) {
  ByteReader reader(data);
  uint32_t magic, length, crc;
  SLACKER_RETURN_IF_ERROR(reader.GetFixed32(&magic));
  if (magic != kFrameMagic) return Status::Corruption("bad frame magic");
  SLACKER_RETURN_IF_ERROR(reader.GetFixed32(&length));
  SLACKER_RETURN_IF_ERROR(reader.GetFixed32(&crc));
  if (reader.remaining() != length) {
    return Status::Corruption("frame length mismatch");
  }
  out->resize(length);
  SLACKER_RETURN_IF_ERROR(reader.GetBytes(out->data(), length));
  if (Crc32c(*out) != crc) return Status::Corruption("frame checksum");
  return Status::Ok();
}

}  // namespace slacker::net
