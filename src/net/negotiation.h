#ifndef SLACKER_NET_NEGOTIATION_H_
#define SLACKER_NET_NEGOTIATION_H_

#include <cstdint>

#include "src/codec/codec.h"
#include "src/common/bytes.h"
#include "src/common/status.h"

namespace slacker::net {

/// Capability negotiation for mixed-software-version migration pairs
/// (DESIGN.md §12). Each server advertises its SoftwareVersion plus a
/// feature bitmask in the control handshake (kMigrateRequest and the
/// kMigrateAccept/kSnapshotResume reply); the source then downgrades
/// its codec choice to the common feature set. Version 0 means
/// "legacy, negotiation disabled": such servers never emit the
/// extension and peers never downgrade on their behalf, keeping every
/// pre-versioning wire byte and golden digest intact.

/// Feature bits advertised in the negotiation mask.
inline constexpr uint64_t kFeatureLz = 1ull << 0;
inline constexpr uint64_t kFeatureDelta = 1ull << 1;

/// Extension magic; the codec frame extension uses 0xC5.
inline constexpr uint8_t kNegotiationMagic = 0xC6;

/// The feature set a given software version ships with. Deterministic
/// by construction: a fleet on version v always advertises the same
/// mask, so mixed-version pairs always converge to the same codec.
///   v0    — legacy, no negotiation (mask unused)
///   v1    — raw streaming only
///   v2    — + LZ compression
///   v3+   — + delta encoding
uint64_t FeatureMaskForVersion(uint32_t version);

/// Resolves the codec mode a (source, target) pair actually runs.
/// If either side is version 0 the handshake is legacy and the
/// requested mode stands unchanged. Otherwise the pair downgrades to
/// the intersection of the advertised masks — never fails:
///   kLz       -> kLz if both sides speak LZ, else kRaw
///   kDelta    -> kDelta if both sides speak delta, else kRaw
///   kAdaptive -> kAdaptive (both), kLz (LZ only), kDelta (delta
///                only), else kRaw
codec::CodecMode NegotiatedCodecMode(codec::CodecMode requested,
                                     uint32_t source_version,
                                     uint64_t source_mask,
                                     uint32_t target_version,
                                     uint64_t target_mask);

/// The version/capability pair carried by the control handshake.
/// Encoded as a self-checksummed message extension so legacy decoders
/// (which expect the payload to end, or a 0xC5 codec frame) reject
/// rather than misparse it.
///
/// Wire layout:
///   magic   u8      0xC6
///   version varint  software version
///   mask    varint  feature bitmask
///   crc     fixed32 CRC-32C over all preceding extension bytes
struct NegotiationInfo {
  uint32_t software_version = 0;
  uint64_t feature_mask = 0;

  bool operator==(const NegotiationInfo& other) const = default;

  void EncodeTo(ByteWriter* writer) const;
  /// Consumes the extension including its magic byte. Corruption on a
  /// bad magic, truncated field, or CRC mismatch.
  Status DecodeFrom(ByteReader* reader);
};

}  // namespace slacker::net

#endif  // SLACKER_NET_NEGOTIATION_H_
