#include "src/net/negotiation.h"

#include "src/common/checksum.h"

namespace slacker::net {

uint64_t FeatureMaskForVersion(uint32_t version) {
  if (version <= 1) return 0;
  if (version == 2) return kFeatureLz;
  return kFeatureLz | kFeatureDelta;
}

codec::CodecMode NegotiatedCodecMode(codec::CodecMode requested,
                                     uint32_t source_version,
                                     uint64_t source_mask,
                                     uint32_t target_version,
                                     uint64_t target_mask) {
  if (source_version == 0 || target_version == 0) return requested;
  const uint64_t common = source_mask & target_mask;
  const bool lz = (common & kFeatureLz) != 0;
  const bool delta = (common & kFeatureDelta) != 0;
  switch (requested) {
    case codec::CodecMode::kRaw:
      return codec::CodecMode::kRaw;
    case codec::CodecMode::kLz:
      return lz ? codec::CodecMode::kLz : codec::CodecMode::kRaw;
    case codec::CodecMode::kDelta:
      return delta ? codec::CodecMode::kDelta : codec::CodecMode::kRaw;
    case codec::CodecMode::kAdaptive:
      if (lz && delta) return codec::CodecMode::kAdaptive;
      if (lz) return codec::CodecMode::kLz;
      if (delta) return codec::CodecMode::kDelta;
      return codec::CodecMode::kRaw;
  }
  return codec::CodecMode::kRaw;
}

void NegotiationInfo::EncodeTo(ByteWriter* writer) const {
  ByteWriter body;
  body.PutU8(kNegotiationMagic);
  body.PutVarint64(software_version);
  body.PutVarint64(feature_mask);
  const uint32_t crc = Crc32c(body.data());
  writer->PutBytes(body.data().data(), body.size());
  writer->PutFixed32(crc);
}

Status NegotiationInfo::DecodeFrom(ByteReader* reader) {
  uint8_t magic;
  SLACKER_RETURN_IF_ERROR(reader->GetU8(&magic));
  if (magic != kNegotiationMagic) {
    return Status::Corruption("bad negotiation extension magic");
  }
  uint64_t version64;
  SLACKER_RETURN_IF_ERROR(reader->GetVarint64(&version64));
  if (version64 > UINT32_MAX) {
    return Status::Corruption("negotiation version out of range");
  }
  uint64_t mask;
  SLACKER_RETURN_IF_ERROR(reader->GetVarint64(&mask));
  uint32_t crc;
  SLACKER_RETURN_IF_ERROR(reader->GetFixed32(&crc));
  // Re-encode the body to verify the checksum covers exactly what we
  // parsed (same technique as codec::FrameHeader::DecodeFrom).
  ByteWriter body;
  body.PutU8(kNegotiationMagic);
  body.PutVarint64(version64);
  body.PutVarint64(mask);
  if (Crc32c(body.data()) != crc) {
    return Status::Corruption("negotiation extension checksum mismatch");
  }
  software_version = static_cast<uint32_t>(version64);
  feature_mask = mask;
  return Status::Ok();
}

}  // namespace slacker::net
