#ifndef SLACKER_CONTROL_ZIEGLER_NICHOLS_H_
#define SLACKER_CONTROL_ZIEGLER_NICHOLS_H_

#include <functional>

#include "src/common/status.h"
#include "src/control/pid.h"

namespace slacker::control {

/// Abstract plant for closed-loop tuning experiments: given the
/// actuator input for one timestep, returns the new process-variable
/// value. Tests use synthetic first/second-order plants; Slacker's real
/// plant is the multitenant server itself.
class Plant {
 public:
  virtual ~Plant() = default;
  virtual double Step(double input, double dt) = 0;
  virtual void Reset() = 0;
};

/// Result of the ultimate-gain search.
struct UltimateGain {
  /// Smallest proportional gain producing sustained oscillation.
  double ku = 0.0;
  /// Oscillation period at ku, in seconds.
  double tu = 0.0;
};

/// Classic Ziegler–Nichols closed-loop tuning rules [Ziegler & Nichols
/// 1942], mapping the ultimate gain/period to controller gains. The
/// paper seeds its controller with these and hand-tunes on top (§6).
PidConfig ZieglerNicholsPid(const UltimateGain& ug, double setpoint,
                            double output_min, double output_max);
PidConfig ZieglerNicholsPi(const UltimateGain& ug, double setpoint,
                           double output_min, double output_max);
PidConfig ZieglerNicholsP(const UltimateGain& ug, double setpoint,
                          double output_min, double output_max);

struct TuneOptions {
  double setpoint = 1.0;
  double dt = 1.0;
  /// Gain sweep: kp takes values kp_start * kp_growth^i.
  double kp_start = 0.001;
  double kp_growth = 1.3;
  int max_gain_steps = 60;
  /// Closed-loop steps simulated per candidate gain.
  int steps_per_trial = 400;
  /// Oscillation is "sustained" when the later peaks retain at least
  /// this fraction of the earlier peaks' amplitude.
  double sustain_ratio = 0.85;
};

/// Finds the ultimate gain by running P-only closed loops with
/// increasing Kp against `plant` until the error oscillation stops
/// decaying. Returns FailedPrecondition if no gain in the sweep
/// produces sustained oscillation (over-damped plant).
Result<UltimateGain> FindUltimateGain(Plant* plant, const TuneOptions& options);

}  // namespace slacker::control

#endif  // SLACKER_CONTROL_ZIEGLER_NICHOLS_H_
