#include "src/control/latency_monitor.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace slacker::control {

LatencyMonitor::LatencyMonitor(SimTime window) : window_(window) {}

void LatencyMonitor::Record(SimTime now, double latency_ms) {
  window_.Add(now, latency_ms);
  samples_.emplace_back(now, latency_ms);
  while (!samples_.empty() && samples_.front().first <= now - window()) {
    samples_.pop_front();
  }
  ++total_recorded_;
  // Keep the "last known average" fresh even if nobody polls between
  // recordings, so a later empty-window read reports recent reality.
  last_average_ = window_.MeanAt(now);
}

void LatencyMonitor::SetOutstandingProbe(
    std::function<double(SimTime)> probe) {
  probe_ = std::move(probe);
}

double LatencyMonitor::WindowAverageMs(SimTime now) {
  if (window_.CountAt(now) > 0) {
    last_average_ = window_.MeanAt(now);
    return last_average_;
  }
  // Nothing completed recently. If transactions are stuck in flight,
  // their age is a *lower bound* on the latency they will report —
  // use it so the controller sees the overload.
  if (probe_) {
    const double pending_age = probe_(now);
    if (pending_age > 0.0) {
      return std::max(pending_age, last_average_);
    }
  }
  return last_average_;
}

size_t LatencyMonitor::WindowCount(SimTime now) {
  return window_.CountAt(now);
}

double LatencyMonitor::WindowPercentileMs(SimTime now, double percentile) {
  while (!samples_.empty() && samples_.front().first <= now - window()) {
    samples_.pop_front();
  }
  if (samples_.empty()) return WindowAverageMs(now);
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const auto& [t, v] : samples_) values.push_back(v);
  std::sort(values.begin(), values.end());
  if (percentile <= 0.0) return values.front();
  if (percentile >= 100.0) return values.back();
  const auto rank = static_cast<size_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

}  // namespace slacker::control
