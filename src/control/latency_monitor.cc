#include "src/control/latency_monitor.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace slacker::control {

LatencyMonitor::LatencyMonitor(SimTime window) : window_(window) {}

void LatencyMonitor::PruneExpired(SimTime now) {
  // Same half-open (now - window, now] convention as
  // SlidingWindowMean::Evict: a sample exactly `window` old is out.
  while (!samples_.empty() && samples_.front().time <= now - window()) {
    samples_.pop_front();
  }
}

void LatencyMonitor::Record(SimTime now, double latency_ms) {
  window_.Add(now, latency_ms);
  samples_.push_back({now, latency_ms});
  PruneExpired(now);
  ++total_recorded_;
  // Keep the "last known average" fresh even if nobody polls between
  // recordings, so a later empty-window read reports recent reality.
  last_average_ = window_.MeanAt(now);
}

void LatencyMonitor::SetOutstandingProbe(
    std::function<double(SimTime)> probe) {
  probe_ = std::move(probe);
}

double LatencyMonitor::WindowAverageMs(SimTime now) {
  if (window_.CountAt(now) > 0) {
    last_average_ = window_.MeanAt(now);
    return last_average_;
  }
  // Nothing completed recently. If transactions are stuck in flight,
  // their age is a *lower bound* on the latency they will report —
  // use it so the controller sees the overload.
  if (probe_) {
    const double pending_age = probe_(now);
    if (pending_age > 0.0) {
      return std::max(pending_age, last_average_);
    }
  }
  return last_average_;
}

size_t LatencyMonitor::WindowCount(SimTime now) {
  return window_.CountAt(now);
}

bool LatencyMonitor::WithinGuardBand(SimTime now, double setpoint_ms,
                                     double band_fraction) {
  if (setpoint_ms <= 0.0) return false;
  return WindowAverageMs(now) >= setpoint_ms * (1.0 - band_fraction);
}

double LatencyMonitor::WindowPercentileMs(SimTime now, double percentile) {
  PruneExpired(now);
  if (samples_.empty()) return WindowAverageMs(now);
  // Reuse the scratch buffer across ticks; clear() keeps capacity.
  std::vector<double>& values = percentile_scratch_;
  values.clear();
  values.reserve(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    values.push_back(samples_[i].latency_ms);
  }
  if (percentile <= 0.0) {
    return *std::min_element(values.begin(), values.end());
  }
  if (percentile >= 100.0) {
    return *std::max_element(values.begin(), values.end());
  }
  // Nearest-rank percentile via selection, not a full sort — this runs
  // once per controller tick per monitor, and the window can hold
  // thousands of completions on a busy server.
  const auto rank = static_cast<size_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(values.size())));
  const size_t index = rank == 0 ? 0 : rank - 1;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(index),
                   values.end());
  return values[index];
}

}  // namespace slacker::control
