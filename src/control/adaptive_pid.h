#ifndef SLACKER_CONTROL_ADAPTIVE_PID_H_
#define SLACKER_CONTROL_ADAPTIVE_PID_H_

#include "src/common/status.h"
#include "src/control/pid.h"

namespace slacker::control {

/// Options for the self-tuning controller.
struct AdaptivePidOptions {
  /// Base gains/limits; the paper's hand-tuned values are the anchor.
  PidConfig base;
  /// Steady-state plant gain (ms of latency per MB/s of migration rate)
  /// the base gains were tuned for. The adaptive layer rescales the
  /// gains by reference_gain / estimated_gain, so a twice-as-sensitive
  /// server gets half the controller gain.
  double reference_gain = 40.0;
  /// Exponential forgetting factor of the recursive estimator (closer
  /// to 1 = slower adaptation, more smoothing).
  double forgetting = 0.98;
  /// Clamp on the gain rescale factor.
  double min_scale = 0.2;
  double max_scale = 5.0;
  /// Ignore ticks whose rate change is below this (MB/s) — too little
  /// excitation to identify the plant.
  double min_excitation = 0.5;

  Status Validate() const;
};

/// Self-tuning wrapper over the velocity PID (§6 "Choosing the PID
/// Parameters": "One model is adaptive control ... PID parameters to be
/// learned online and adapted to the situation in real time").
///
/// Identification: the plant near its operating point is modelled as a
/// first-order ARX process,
///     y(t) = a·y(t-1) + b·u(t-1) + c,
/// whose parameters are tracked by exponentially weighted recursive
/// least squares; the steady-state gain is ĝ = b / (1 - a). The
/// effective loop gain is kept constant by scaling all three PID gains
/// by reference_gain / ĝ — servers whose latency reacts strongly to
/// migration speed get a gentler controller, insensitive servers a more
/// aggressive one, with no per-deployment hand-tuning.
class AdaptivePidController {
 public:
  explicit AdaptivePidController(const AdaptivePidOptions& options);

  /// One controller tick; returns the new actuator output (MB/s).
  double Update(double process_variable, double dt);

  void Reset(double initial_output = 0.0);

  double output() const { return pid_.output(); }
  /// Current steady-state plant-gain estimate ĝ (ms per MB/s).
  double estimated_gain() const { return gain_estimate_; }
  /// Current gain rescale factor applied to the base PID gains
  /// (identifier rescale x oscillation damping).
  double gain_scale() const { return scale_; }
  /// Oscillation-guard damping factor (1 = calm).
  double damping() const { return damping_; }
  const PidController& inner() const { return pid_; }
  void set_setpoint(double setpoint);

 private:
  void Identify(double pv);
  void UpdateOscillationGuard(double pv);
  void Rescale();

  static constexpr int kWarmupSamples = 10;
  static constexpr int kOscillationWindow = 8;

  AdaptivePidOptions options_;
  PidController pid_;
  double gain_estimate_;
  double scale_ = 1.0;
  int samples_ = 0;
  // Oscillation guard: when the process variable swings by more than
  // half the setpoint within a short window, the loop gain is too high
  // regardless of what the identifier believes (its data is then a
  // limit cycle and uninformative); a multiplicative damping factor
  // backs the gains off until calm.
  double pv_window_[kOscillationWindow] = {};
  int history_len_ = 0;
  double damping_ = 1.0;

  // ARX parameter vector theta = [a, b, c] and 3x3 covariance P.
  double theta_[3];
  double p_[3][3];
  double prev_pv_ = 0.0;
  double prev_output_ = 0.0;
  bool have_prev_ = false;
};

}  // namespace slacker::control

#endif  // SLACKER_CONTROL_ADAPTIVE_PID_H_
