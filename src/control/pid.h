#ifndef SLACKER_CONTROL_PID_H_
#define SLACKER_CONTROL_PID_H_

#include <string>

#include "src/common/status.h"

namespace slacker::control {

/// Gains and limits for a PID controller. Units in Slacker's use: the
/// process variable and setpoint are average transaction latency in
/// milliseconds; the output is a throttle rate in MB/s. The defaults
/// are the values the paper reports using (§5.3 footnote 1):
/// Kp = 0.025, Ki = 0.005, Kd = 0.015.
struct PidConfig {
  double kp = 0.025;
  double ki = 0.005;
  double kd = 0.015;
  /// Desired process-variable value (target latency, ms).
  double setpoint = 1000.0;
  /// Actuator clamp (MB/s). output_max is "the maximum possible
  /// throttling speed" the controller outputs a percentage of (§4.2.3).
  double output_min = 0.0;
  double output_max = 50.0;

  /// Validates gains/limits (non-negative gains, min < max, positive
  /// setpoint).
  Status Validate() const;
};

/// The two standard PID realizations:
///  - kPositional: u(t) = Kp e + Ki ∫e dt + Kd de/dt, with the integral
///    clamped to the output range (anti-windup by clamping).
///  - kVelocity: emits a *delta* per step and keeps no error sum —
///    Δu = Kp Δe + Ki e dt + Kd (e - 2e' + e'')/dt. This is the form
///    Slacker uses, precisely because it cannot wind up when the
///    actuator saturates (§4.2.3: a lightly loaded server keeps latency
///    far below the setpoint even at full migration speed).
enum class PidForm { kPositional, kVelocity };

/// Discrete-time PID controller.
class PidController {
 public:
  PidController(const PidConfig& config, PidForm form = PidForm::kVelocity);

  /// Advances one timestep: observes `process_variable`, returns the
  /// new clamped actuator output. `dt` is the seconds since the last
  /// update (Slacker ticks once per second).
  double Update(double process_variable, double dt);

  /// Resets history and seeds the actuator at `initial_output`.
  void Reset(double initial_output = 0.0);

  double output() const { return output_; }
  const PidConfig& config() const { return config_; }
  PidForm form() const { return form_; }
  /// Last error observed (setpoint - pv).
  double last_error() const { return prev_error_; }
  /// Integral accumulator (positional form only).
  double integral() const { return integral_; }

  /// Per-term contributions from the most recent Update(): the term
  /// values in positional form, the per-step deltas in velocity form.
  /// For tracing controller behavior, not for control decisions.
  double last_p() const { return last_p_; }
  double last_i() const { return last_i_; }
  double last_d() const { return last_d_; }

  /// Updates the setpoint mid-flight (e.g., SLA renegotiation).
  void set_setpoint(double setpoint) { config_.setpoint = setpoint; }

 private:
  double Clamp(double v) const;

  PidConfig config_;
  PidForm form_;
  double output_ = 0.0;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  double prev_prev_error_ = 0.0;
  double last_p_ = 0.0;
  double last_i_ = 0.0;
  double last_d_ = 0.0;
  int steps_ = 0;
};

}  // namespace slacker::control

#endif  // SLACKER_CONTROL_PID_H_
