#ifndef SLACKER_CONTROL_LATENCY_MONITOR_H_
#define SLACKER_CONTROL_LATENCY_MONITOR_H_

#include <functional>

#include <deque>

#include "src/common/stats.h"
#include "src/common/units.h"

namespace slacker::control {

/// The controller's sensor: average transaction latency over a small
/// sliding window (the paper found 3 s with a 1 s tick reasonable,
/// §4.2.3). Aggregates completions from *all* tenants on a server —
/// the multitenant policy of §5.6.
class LatencyMonitor {
 public:
  explicit LatencyMonitor(SimTime window = 3.0);

  /// Records a completed transaction's latency (ms) at time `now`.
  void Record(SimTime now, double latency_ms);

  /// Optional probe returning the age (ms) of the oldest transaction
  /// still outstanding. When the window is empty because the server is
  /// too backed up to complete anything, the monitor reports this
  /// instead of a stale/zero value — otherwise an overloaded server
  /// would look idle to the controller.
  void SetOutstandingProbe(std::function<double(SimTime)> probe);

  /// Smoothed latency signal at time `now` (ms).
  double WindowAverageMs(SimTime now);

  /// Percentile of the completions inside the window (p in [0,100]) —
  /// feedback for percentile SLAs (§3: "certain percentile latencies").
  /// Falls back like WindowAverageMs when the window is empty.
  double WindowPercentileMs(SimTime now, double percentile);

  /// Completions currently inside the window.
  size_t WindowCount(SimTime now);

  uint64_t total_recorded() const { return total_recorded_; }
  SimTime window() const { return window_.window(); }

 private:
  SlidingWindowMean window_;
  // Parallel record of (time, latency) for percentile queries.
  std::deque<std::pair<SimTime, double>> samples_;
  std::function<double(SimTime)> probe_;
  double last_average_ = 0.0;
  uint64_t total_recorded_ = 0;
};

}  // namespace slacker::control

#endif  // SLACKER_CONTROL_LATENCY_MONITOR_H_
