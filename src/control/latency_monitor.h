#ifndef SLACKER_CONTROL_LATENCY_MONITOR_H_
#define SLACKER_CONTROL_LATENCY_MONITOR_H_

#include <functional>
#include <vector>

#include "src/common/ring_deque.h"
#include "src/common/stats.h"
#include "src/common/units.h"

namespace slacker::control {

/// The controller's sensor: average transaction latency over a small
/// sliding window (the paper found 3 s with a 1 s tick reasonable,
/// §4.2.3). Aggregates completions from *all* tenants on a server —
/// the multitenant policy of §5.6.
class LatencyMonitor {
 public:
  explicit LatencyMonitor(SimTime window = 3.0);

  /// Records a completed transaction's latency (ms) at time `now`.
  void Record(SimTime now, double latency_ms);

  /// Optional probe returning the age (ms) of the oldest transaction
  /// still outstanding. When the window is empty because the server is
  /// too backed up to complete anything, the monitor reports this
  /// instead of a stale/zero value — otherwise an overloaded server
  /// would look idle to the controller.
  void SetOutstandingProbe(std::function<double(SimTime)> probe);

  /// Smoothed latency signal at time `now` (ms).
  double WindowAverageMs(SimTime now);

  /// Percentile of the completions inside the window (p in [0,100]) —
  /// feedback for percentile SLAs (§3: "certain percentile latencies").
  /// Falls back like WindowAverageMs when the window is empty.
  double WindowPercentileMs(SimTime now, double percentile);

  /// Completions currently inside the window.
  size_t WindowCount(SimTime now);

  /// True when the smoothed latency signal at `now` has climbed to
  /// within `band_fraction` of `setpoint_ms` (or past it):
  ///   WindowAverageMs(now) >= setpoint_ms * (1 - band_fraction).
  /// The rebalancer's admission controller uses this to defer
  /// migrations involving a server whose latency has no slack left —
  /// migration I/O would push it straight through the PID setpoint.
  bool WithinGuardBand(SimTime now, double setpoint_ms, double band_fraction);

  uint64_t total_recorded() const { return total_recorded_; }
  SimTime window() const { return window_.window(); }

 private:
  /// Evicts percentile samples that have left the window. Mirrors
  /// SlidingWindowMean's convention exactly — the window is
  /// (now - window, now], so a sample exactly `window` old is evicted
  /// by both the mean and the percentile paths.
  void PruneExpired(SimTime now);

  struct Sample {
    SimTime time;
    double latency_ms;
  };

  SlidingWindowMean window_;
  // Parallel record of (time, latency) for percentile queries, kept in
  // a flat ring so the per-completion eviction scan stays in one cache
  // run and never allocates.
  RingDeque<Sample> samples_;
  // Persistent scratch for WindowPercentileMs: the selection needs a
  // mutable copy of the window's values, and reallocating it every
  // controller tick (once per server per second at fig14 scale) was
  // pure churn. Grows to the window high-water mark once.
  std::vector<double> percentile_scratch_;
  std::function<double(SimTime)> probe_;
  double last_average_ = 0.0;
  uint64_t total_recorded_ = 0;
};

}  // namespace slacker::control

#endif  // SLACKER_CONTROL_LATENCY_MONITOR_H_
