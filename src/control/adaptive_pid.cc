#include "src/control/adaptive_pid.h"

#include <algorithm>
#include <cmath>

namespace slacker::control {

Status AdaptivePidOptions::Validate() const {
  SLACKER_RETURN_IF_ERROR(base.Validate());
  if (reference_gain <= 0) {
    return Status::InvalidArgument("reference_gain must be positive");
  }
  if (forgetting <= 0 || forgetting > 1) {
    return Status::InvalidArgument("forgetting must be in (0, 1]");
  }
  if (min_scale <= 0 || min_scale >= max_scale) {
    return Status::InvalidArgument("need 0 < min_scale < max_scale");
  }
  return Status::Ok();
}

AdaptivePidController::AdaptivePidController(const AdaptivePidOptions& options)
    : options_(options),
      pid_(options.base, PidForm::kVelocity),
      gain_estimate_(options.reference_gain) {
  Reset(options.base.output_min);
}

void AdaptivePidController::Reset(double initial_output) {
  pid_.Reset(initial_output);
  gain_estimate_ = options_.reference_gain;
  scale_ = 1.0;
  have_prev_ = false;
  samples_ = 0;
  history_len_ = 0;
  damping_ = 1.0;
  // Prior in normalized units (y/setpoint vs u/output_max): the
  // instantaneous plant the base gains assume.
  theta_[0] = 0.0;
  theta_[1] = options_.reference_gain * options_.base.output_max /
              options_.base.setpoint;
  theta_[2] = 0.0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) p_[i][j] = i == j ? 1.0 : 0.0;
  }
}

void AdaptivePidController::set_setpoint(double setpoint) {
  pid_.set_setpoint(setpoint);
}

void AdaptivePidController::Identify(double pv) {
  if (!have_prev_) return;
  // Regressors for y(t) = a*y(t-1) + b*u(t-1) + c, in normalized units
  // (y/setpoint, u/output_max) so the covariance is well conditioned.
  // Only learn when the actuator actually moved — otherwise b is
  // unidentifiable and forgetting would just inflate the covariance.
  const double du = pid_.output() - prev_output_;
  if (std::abs(du) < options_.min_excitation) return;
  const double y_ref = options_.base.setpoint;
  const double u_ref = options_.base.output_max;
  const double yn = pv / y_ref;
  const double phi[3] = {prev_pv_ / y_ref, prev_output_ / u_ref, 1.0};
  const double lambda = options_.forgetting;

  // k = P*phi / (lambda + phi' * P * phi)
  double p_phi[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) p_phi[i] += p_[i][j] * phi[j];
  }
  double denom = lambda;
  for (int i = 0; i < 3; ++i) denom += phi[i] * p_phi[i];
  if (denom <= 0) return;
  double k[3];
  for (int i = 0; i < 3; ++i) k[i] = p_phi[i] / denom;

  double prediction = 0;
  for (int i = 0; i < 3; ++i) prediction += theta_[i] * phi[i];
  const double residual = yn - prediction;
  for (int i = 0; i < 3; ++i) theta_[i] += k[i] * residual;
  // Project onto the physically admissible region: the plant is a
  // low-pass with positive input gain. Without this, limit-cycle data
  // (which underdetermines the fit) can park b at a negative value and
  // the controller would then trust a nonsensical plant.
  theta_[0] = std::clamp(theta_[0], 0.0, 0.98);
  theta_[1] = std::max(theta_[1], 0.02);

  // P = (P - k * phi' * P) / lambda, kept symmetric and bounded.
  double new_p[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      new_p[i][j] = (p_[i][j] - k[i] * p_phi[j]) / lambda;
    }
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      p_[i][j] = std::clamp((new_p[i][j] + new_p[j][i]) / 2.0, -1e8, 1e8);
    }
  }

  ++samples_;
  // Steady-state gain g = (b / (1 - a)) * y_ref / u_ref. Plants here
  // are low-pass (a in [0, 1)); clamp before inverting.
  const double a = std::clamp(theta_[0], 0.0, 0.95);
  const double g = theta_[1] / (1.0 - a) * y_ref / u_ref;
  if (std::isfinite(g)) {
    // Plant gain is physically positive; hold a floor when noise says
    // otherwise rather than inverting the controller.
    gain_estimate_ = std::max(g, options_.reference_gain * 0.05);
  }
}

void AdaptivePidController::Rescale() {
  // Trust the base tuning until the estimator has seen enough excited
  // samples to have a meaningful fit.
  double identifier_scale = 1.0;
  if (samples_ >= kWarmupSamples) {
    identifier_scale = options_.reference_gain / gain_estimate_;
  }
  scale_ = std::clamp(identifier_scale * damping_, options_.min_scale,
                      options_.max_scale);
}

void AdaptivePidController::UpdateOscillationGuard(double pv) {
  pv_window_[history_len_ % kOscillationWindow] = pv;
  ++history_len_;
  if (history_len_ < kOscillationWindow) return;
  double lo = pv_window_[0], hi = pv_window_[0];
  for (int i = 1; i < kOscillationWindow; ++i) {
    lo = std::min(lo, pv_window_[i]);
    hi = std::max(hi, pv_window_[i]);
  }
  if (hi - lo > 0.5 * options_.base.setpoint) {
    // Ringing: the data feeding the identifier is a limit cycle, so do
    // not trust it — damp multiplicatively until the loop calms.
    damping_ = std::max(damping_ * 0.85, 0.002);
  } else {
    damping_ = std::min(damping_ * 1.01, 1.0);
  }
}

double AdaptivePidController::Update(double pv, double dt) {
  Identify(pv);
  UpdateOscillationGuard(pv);
  Rescale();
  const double prev_out = pid_.output();
  const double setpoint = pid_.config().setpoint;
  // The velocity form's output delta is linear in e, Δe, and Δ²e, so
  // feeding a pv whose deviation from the setpoint is scaled equals
  // scaling all three gains by scale_ (exact while scale_ is constant;
  // scale_ moves slowly relative to the tick).
  const double scaled_pv = setpoint - scale_ * (setpoint - pv);
  const double out = pid_.Update(scaled_pv, dt);
  prev_output_ = prev_out;
  prev_pv_ = pv;
  have_prev_ = true;
  return out;
}

}  // namespace slacker::control
