#include "src/control/ziegler_nichols.h"

#include <cmath>
#include <vector>

namespace slacker::control {
namespace {

PidConfig BaseConfig(double setpoint, double output_min, double output_max) {
  PidConfig config;
  config.setpoint = setpoint;
  config.output_min = output_min;
  config.output_max = output_max;
  return config;
}

}  // namespace

PidConfig ZieglerNicholsPid(const UltimateGain& ug, double setpoint,
                            double output_min, double output_max) {
  PidConfig config = BaseConfig(setpoint, output_min, output_max);
  config.kp = 0.6 * ug.ku;
  config.ki = 2.0 * config.kp / ug.tu;
  config.kd = config.kp * ug.tu / 8.0;
  return config;
}

PidConfig ZieglerNicholsPi(const UltimateGain& ug, double setpoint,
                           double output_min, double output_max) {
  PidConfig config = BaseConfig(setpoint, output_min, output_max);
  config.kp = 0.45 * ug.ku;
  config.ki = 1.2 * config.kp / ug.tu;
  config.kd = 0.0;
  return config;
}

PidConfig ZieglerNicholsP(const UltimateGain& ug, double setpoint,
                          double output_min, double output_max) {
  PidConfig config = BaseConfig(setpoint, output_min, output_max);
  config.kp = 0.5 * ug.ku;
  config.ki = 0.0;
  config.kd = 0.0;
  return config;
}

namespace {

struct TrialOutcome {
  bool sustained = false;
  double period = 0.0;
};

/// Runs a P-only closed loop and inspects the error signal's peaks.
TrialOutcome RunTrial(Plant* plant, double kp, const TuneOptions& options) {
  plant->Reset();
  double pv = 0.0;
  std::vector<double> errors;
  errors.reserve(options.steps_per_trial);
  for (int i = 0; i < options.steps_per_trial; ++i) {
    const double error = options.setpoint - pv;
    errors.push_back(error);
    pv = plant->Step(kp * error, options.dt);
  }

  // Collect local maxima of |error| after the initial transient.
  std::vector<std::pair<int, double>> peaks;
  const int skip = options.steps_per_trial / 5;
  for (int i = skip + 1; i + 1 < static_cast<int>(errors.size()); ++i) {
    const double mag = std::abs(errors[i]);
    if (mag > std::abs(errors[i - 1]) && mag >= std::abs(errors[i + 1]) &&
        mag > 1e-9 * std::abs(options.setpoint)) {
      peaks.emplace_back(i, mag);
    }
  }
  TrialOutcome outcome;
  if (peaks.size() < 4) return outcome;

  // Sustained oscillation: the last peaks are not materially smaller
  // than the first ones.
  const double early = (peaks[0].second + peaks[1].second) / 2.0;
  const double late = (peaks[peaks.size() - 1].second +
                       peaks[peaks.size() - 2].second) / 2.0;
  if (early <= 0.0 || late / early < options.sustain_ratio) return outcome;

  // Period: average spacing of same-sign |error| peaks is half the
  // oscillation period (error alternates sign each half-cycle).
  double spacing_sum = 0.0;
  for (size_t i = 1; i < peaks.size(); ++i) {
    spacing_sum += static_cast<double>(peaks[i].first - peaks[i - 1].first);
  }
  const double mean_spacing =
      spacing_sum / static_cast<double>(peaks.size() - 1);
  outcome.sustained = true;
  outcome.period = 2.0 * mean_spacing * options.dt;
  return outcome;
}

}  // namespace

Result<UltimateGain> FindUltimateGain(Plant* plant,
                                      const TuneOptions& options) {
  double kp = options.kp_start;
  for (int step = 0; step < options.max_gain_steps; ++step) {
    const TrialOutcome outcome = RunTrial(plant, kp, options);
    if (outcome.sustained) {
      UltimateGain ug;
      ug.ku = kp;
      ug.tu = outcome.period;
      return ug;
    }
    kp *= options.kp_growth;
  }
  return Status::FailedPrecondition(
      "no sustained oscillation found in gain sweep");
}

}  // namespace slacker::control
