#include "src/control/pid.h"

#include <algorithm>

namespace slacker::control {

Status PidConfig::Validate() const {
  if (kp < 0 || ki < 0 || kd < 0) {
    return Status::InvalidArgument("PID gains must be non-negative");
  }
  if (output_min >= output_max) {
    return Status::InvalidArgument("output_min must be below output_max");
  }
  if (setpoint <= 0) {
    return Status::InvalidArgument("setpoint must be positive");
  }
  return Status::Ok();
}

PidController::PidController(const PidConfig& config, PidForm form)
    : config_(config), form_(form) {
  Reset(config.output_min);
}

void PidController::Reset(double initial_output) {
  output_ = Clamp(initial_output);
  integral_ = 0.0;
  prev_error_ = 0.0;
  prev_prev_error_ = 0.0;
  last_p_ = 0.0;
  last_i_ = 0.0;
  last_d_ = 0.0;
  steps_ = 0;
}

double PidController::Clamp(double v) const {
  return std::clamp(v, config_.output_min, config_.output_max);
}

double PidController::Update(double process_variable, double dt) {
  if (dt <= 0.0) return output_;
  const double error = config_.setpoint - process_variable;

  if (form_ == PidForm::kPositional) {
    integral_ += error * dt;
    // Anti-windup: keep the integral term alone within actuator range.
    if (config_.ki > 0.0) {
      const double cap = config_.output_max / config_.ki;
      const double floor = config_.output_min / config_.ki;
      integral_ = std::clamp(integral_, floor - std::abs(floor), cap);
    }
    const double derivative = steps_ == 0 ? 0.0 : (error - prev_error_) / dt;
    last_p_ = config_.kp * error;
    last_i_ = config_.ki * integral_;
    last_d_ = config_.kd * derivative;
    output_ = Clamp(last_p_ + last_i_ + last_d_);
  } else {
    // Velocity algorithm: no error sum, output moves by a delta. On the
    // very first step there is no error history, so only the integral
    // path contributes (Δe terms need previous samples).
    last_i_ = config_.ki * error * dt;
    last_p_ = steps_ >= 1 ? config_.kp * (error - prev_error_) : 0.0;
    last_d_ = steps_ >= 2
                  ? config_.kd * (error - 2.0 * prev_error_ + prev_prev_error_) /
                        dt
                  : 0.0;
    output_ = Clamp(output_ + last_p_ + last_i_ + last_d_);
  }

  prev_prev_error_ = prev_error_;
  prev_error_ = error;
  ++steps_;
  return output_;
}

}  // namespace slacker::control
