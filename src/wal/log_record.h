#ifndef SLACKER_WAL_LOG_RECORD_H_
#define SLACKER_WAL_LOG_RECORD_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/storage/record.h"

namespace slacker::wal {

enum class LogType : uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  kCommit = 4,
};

/// One binlog entry. Row-changing entries carry the *full row image*
/// (key + post-image digest), which is what makes delta replay
/// idempotent: re-applying an Update sets the same final state.
struct LogRecord {
  storage::Lsn lsn = 0;
  LogType type = LogType::kCommit;
  uint64_t txn_id = 0;
  uint64_t key = 0;
  /// Post-image digest (unused for kDelete / kCommit).
  uint64_t digest = 0;

  bool operator==(const LogRecord& other) const = default;

  /// Serialized size in bytes (the on-wire/on-disk footprint charged to
  /// the binlog file and to delta transfers).
  size_t EncodedSize() const;

  void EncodeTo(ByteWriter* writer) const;
  static Status DecodeFrom(ByteReader* reader, LogRecord* out);
};

/// Encodes a batch with a count prefix (a "delta" payload).
std::vector<uint8_t> EncodeLogBatch(const std::vector<LogRecord>& records);
Status DecodeLogBatch(const std::vector<uint8_t>& data,
                      std::vector<LogRecord>* out);

}  // namespace slacker::wal

#endif  // SLACKER_WAL_LOG_RECORD_H_
