#include "src/wal/log_record.h"

namespace slacker::wal {

void LogRecord::EncodeTo(ByteWriter* writer) const {
  writer->PutU8(static_cast<uint8_t>(type));
  writer->PutVarint64(lsn);
  writer->PutVarint64(txn_id);
  writer->PutVarint64(key);
  if (type == LogType::kInsert || type == LogType::kUpdate) {
    writer->PutFixed64(digest);
  }
}

size_t LogRecord::EncodedSize() const {
  ByteWriter writer;
  EncodeTo(&writer);
  return writer.size();
}

Status LogRecord::DecodeFrom(ByteReader* reader, LogRecord* out) {
  uint8_t type_byte;
  SLACKER_RETURN_IF_ERROR(reader->GetU8(&type_byte));
  if (type_byte < 1 || type_byte > 4) {
    return Status::Corruption("bad log record type");
  }
  out->type = static_cast<LogType>(type_byte);
  SLACKER_RETURN_IF_ERROR(reader->GetVarint64(&out->lsn));
  SLACKER_RETURN_IF_ERROR(reader->GetVarint64(&out->txn_id));
  SLACKER_RETURN_IF_ERROR(reader->GetVarint64(&out->key));
  out->digest = 0;
  if (out->type == LogType::kInsert || out->type == LogType::kUpdate) {
    SLACKER_RETURN_IF_ERROR(reader->GetFixed64(&out->digest));
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeLogBatch(const std::vector<LogRecord>& records) {
  ByteWriter writer;
  writer.PutVarint64(records.size());
  for (const LogRecord& r : records) r.EncodeTo(&writer);
  return writer.Release();
}

Status DecodeLogBatch(const std::vector<uint8_t>& data,
                      std::vector<LogRecord>* out) {
  ByteReader reader(data);
  uint64_t count;
  SLACKER_RETURN_IF_ERROR(reader.GetVarint64(&count));
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LogRecord record;
    SLACKER_RETURN_IF_ERROR(LogRecord::DecodeFrom(&reader, &record));
    out->push_back(record);
  }
  if (!reader.exhausted()) {
    return Status::Corruption("trailing bytes after log batch");
  }
  return Status::Ok();
}

}  // namespace slacker::wal
