#ifndef SLACKER_WAL_RECOVERY_H_
#define SLACKER_WAL_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/storage/btree.h"
#include "src/wal/binlog.h"
#include "src/wal/log_record.h"

namespace slacker::wal {

/// Outcome of replaying a log batch.
struct ReplayStats {
  uint64_t applied = 0;
  /// Records skipped because the row already carried an equal-or-newer
  /// LSN — replay is idempotent.
  uint64_t skipped_stale = 0;
  uint64_t commits = 0;
};

/// Redo-applies `records` to `table`. Row images win only if their LSN
/// is newer than the stored version, so replaying an overlapping or
/// repeated range converges to the same state (the property the hot
/// backup's prepare step and the delta rounds rely on).
Status Replay(const std::vector<LogRecord>& records, storage::BTree* table,
              ReplayStats* stats = nullptr);

/// Replays the binlog suffix with lsn >= `from` into `table` — the
/// restart-after-crash path when no checkpoint image exists (the
/// initial Load() acts as the implicit LSN-0 checkpoint). Fails if the
/// log no longer retains `from` (purged).
Status ReplayBinlog(const Binlog& log, storage::Lsn from,
                    storage::BTree* table, ReplayStats* stats = nullptr);

}  // namespace slacker::wal

#endif  // SLACKER_WAL_RECOVERY_H_
