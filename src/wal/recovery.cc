#include "src/wal/recovery.h"

namespace slacker::wal {

Status Replay(const std::vector<LogRecord>& records, storage::BTree* table,
              ReplayStats* stats) {
  ReplayStats local;
  for (const LogRecord& record : records) {
    switch (record.type) {
      case LogType::kCommit:
        ++local.commits;
        break;
      case LogType::kInsert:
      case LogType::kUpdate: {
        const storage::Record* existing = table->Get(record.key);
        if (existing != nullptr && existing->lsn >= record.lsn) {
          ++local.skipped_stale;
          break;
        }
        table->Put(storage::Record{record.key, record.lsn, record.digest});
        ++local.applied;
        break;
      }
      case LogType::kDelete: {
        const storage::Record* existing = table->Get(record.key);
        if (existing != nullptr && existing->lsn >= record.lsn) {
          ++local.skipped_stale;
          break;
        }
        table->Erase(record.key);
        ++local.applied;
        break;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

Status ReplayBinlog(const Binlog& log, storage::Lsn from,
                    storage::BTree* table, ReplayStats* stats) {
  if (log.last_lsn() < from) {
    if (stats != nullptr) *stats = ReplayStats{};
    return Status::Ok();  // Nothing newer than the recovery point.
  }
  std::vector<LogRecord> records;
  SLACKER_RETURN_IF_ERROR(log.ReadRange(from, log.last_lsn(), &records));
  return Replay(records, table, stats);
}

}  // namespace slacker::wal
