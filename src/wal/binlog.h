#ifndef SLACKER_WAL_BINLOG_H_
#define SLACKER_WAL_BINLOG_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/status.h"
#include "src/wal/log_record.h"

namespace slacker::wal {

/// Per-tenant binary log: an ordered, LSN-indexed append stream of
/// committed row changes. During live migration the delta shipper reads
/// ranges of it (the MySQL "read the binlog from position X" pattern)
/// and the hot backup records the LSN window it must replay.
class Binlog {
 public:
  Binlog() = default;

  /// Appends a record; lsn is assigned by the caller (the engine) and
  /// must be strictly increasing. `row_image_bytes` is the logical size
  /// of the row image this entry carries (MySQL row-based replication
  /// ships full post-images, so a 1 KiB row costs ~1 KiB of binlog);
  /// it is added to the entry's accounted size on top of the header.
  Status Append(const LogRecord& record, uint64_t row_image_bytes = 0);

  /// LSN the next append is expected to carry (last + 1; 1 if empty).
  storage::Lsn NextLsn() const { return last_lsn_ + 1; }
  storage::Lsn last_lsn() const { return last_lsn_; }
  /// Smallest LSN still retained (grows when Truncate() discards a
  /// prefix).
  storage::Lsn first_lsn() const { return first_lsn_; }

  /// Copies records with lsn in [from, to] into `out`. Requesting a
  /// range older than first_lsn() fails (the log was purged).
  Status ReadRange(storage::Lsn from, storage::Lsn to,
                   std::vector<LogRecord>* out) const;

  /// Same, also emitting each record's accounted size (header + row
  /// image) so a caller that filters the batch can recompute its wire
  /// footprint. `out_bytes` is index-parallel with `out`.
  Status ReadRange(storage::Lsn from, storage::Lsn to,
                   std::vector<LogRecord>* out,
                   std::vector<uint64_t>* out_bytes) const;

  /// Serialized bytes of records with lsn in [from, to].
  uint64_t BytesInRange(storage::Lsn from, storage::Lsn to) const;

  /// Discards records with lsn < `upto` (log purge after checkpoint).
  void Truncate(storage::Lsn upto);

  size_t record_count() const { return records_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::deque<LogRecord> records_;
  std::deque<uint64_t> record_bytes_;
  storage::Lsn first_lsn_ = 1;
  storage::Lsn last_lsn_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace slacker::wal

#endif  // SLACKER_WAL_BINLOG_H_
