#include "src/wal/binlog.h"

#include <algorithm>

namespace slacker::wal {

Status Binlog::Append(const LogRecord& record, uint64_t row_image_bytes) {
  if (record.lsn <= last_lsn_) {
    return Status::InvalidArgument("binlog LSN not increasing");
  }
  records_.push_back(record);
  const uint64_t bytes = record.EncodedSize() + row_image_bytes;
  record_bytes_.push_back(bytes);
  total_bytes_ += bytes;
  last_lsn_ = record.lsn;
  return Status::Ok();
}

namespace {

struct LsnLess {
  bool operator()(const LogRecord& r, storage::Lsn lsn) const {
    return r.lsn < lsn;
  }
  bool operator()(storage::Lsn lsn, const LogRecord& r) const {
    return lsn < r.lsn;
  }
};

}  // namespace

Status Binlog::ReadRange(storage::Lsn from, storage::Lsn to,
                         std::vector<LogRecord>* out) const {
  out->clear();
  if (from > to) return Status::Ok();
  if (from < first_lsn_) {
    return Status::OutOfRange("binlog range purged");
  }
  auto begin = std::lower_bound(records_.begin(), records_.end(), from,
                                LsnLess{});
  for (auto it = begin; it != records_.end() && it->lsn <= to; ++it) {
    out->push_back(*it);
  }
  return Status::Ok();
}

Status Binlog::ReadRange(storage::Lsn from, storage::Lsn to,
                         std::vector<LogRecord>* out,
                         std::vector<uint64_t>* out_bytes) const {
  out->clear();
  out_bytes->clear();
  if (from > to) return Status::Ok();
  if (from < first_lsn_) {
    return Status::OutOfRange("binlog range purged");
  }
  auto begin = std::lower_bound(records_.begin(), records_.end(), from,
                                LsnLess{});
  size_t idx = static_cast<size_t>(begin - records_.begin());
  for (auto it = begin; it != records_.end() && it->lsn <= to; ++it, ++idx) {
    out->push_back(*it);
    out_bytes->push_back(record_bytes_[idx]);
  }
  return Status::Ok();
}

uint64_t Binlog::BytesInRange(storage::Lsn from, storage::Lsn to) const {
  if (from > to || records_.empty()) return 0;
  auto begin = std::lower_bound(records_.begin(), records_.end(), from,
                                LsnLess{});
  uint64_t bytes = 0;
  size_t idx = static_cast<size_t>(begin - records_.begin());
  for (auto it = begin; it != records_.end() && it->lsn <= to; ++it, ++idx) {
    bytes += record_bytes_[idx];
  }
  return bytes;
}

void Binlog::Truncate(storage::Lsn upto) {
  while (!records_.empty() && records_.front().lsn < upto) {
    total_bytes_ -= record_bytes_.front();
    records_.pop_front();
    record_bytes_.pop_front();
  }
  first_lsn_ = std::max(first_lsn_, upto);
}

}  // namespace slacker::wal
