#ifndef SLACKER_FORECAST_COST_MODEL_H_
#define SLACKER_FORECAST_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/forecast/load_predictor.h"

namespace slacker::forecast {

/// One candidate migration start, priced. The cost currency is
/// predicted SLA-violation server-seconds (Voorsluys et al.: price the
/// SLA damage of the migration into the plan), integrated over the
/// predicted migration window at both ends of the transfer.
struct MigrationCostEstimate {
  SimTime start = 0.0;
  /// Predicted transfer duration at the modeled throttle rate.
  double duration_seconds = 0.0;
  /// Modeled average transfer rate over the window (MB/s).
  double rate_mbps = 0.0;
  /// Predicted SLA-violation server-seconds across source + target.
  double violation_seconds = 0.0;
};

struct CostModelOptions {
  /// Load above this accrues predicted violation-seconds (Equation 1's
  /// R0 — the utilization level above which SLA violations begin).
  double violation_knee = 0.55;
  /// Normalized load the migration stream itself adds to each end while
  /// the transfer runs at the throttle ceiling; scaled down linearly
  /// with the modeled rate.
  double migration_load_at_ceiling = 0.25;
  /// Throttle model: the PID floors/ceilings the transfer rate between
  /// these (MB/s); the modeled rate degrades from ceiling to floor as
  /// predicted load approaches the knee.
  double throttle_floor_mbps = 2.0;
  double throttle_ceiling_mbps = 30.0;
  /// Evaluation step when integrating predicted load over the window.
  SimTime integration_step = 5.0;
  /// Price with the upper confidence band instead of the point
  /// forecast (risk-averse planning).
  bool use_upper_band = true;

  Status Validate() const;
};

/// Prices a candidate migration at a candidate start time from the
/// load forecast: the modeled throttle rate (hence duration) follows
/// the predicted load at both ends, and every integration step where
/// predicted load + migration interference exceeds the violation knee
/// contributes (excess-weighted) violation server-seconds.
class MigrationCostModel {
 public:
  MigrationCostModel(const LoadPredictor* predictor,
                     CostModelOptions options = CostModelOptions());

  /// Price moving `data_bytes` from `source` to `target` starting at
  /// `start` (absolute sim time).
  MigrationCostEstimate Price(uint64_t source_server, uint64_t target_server,
                              uint64_t data_bytes, SimTime start) const;

  /// Price draining `data_bytes` spread across `servers` (an upgrade
  /// wave evacuation): the window cost integrates every listed server's
  /// predicted load. Targets are unknown ahead of planning, so only the
  /// listed (source) ends are priced — comparisons between candidate
  /// start times remain meaningful.
  MigrationCostEstimate PriceServers(const std::vector<uint64_t>& servers,
                                     uint64_t data_bytes,
                                     SimTime start) const;

  const CostModelOptions& options() const { return options_; }
  const LoadPredictor* predictor() const { return predictor_; }

 private:
  double LoadAt(uint64_t server_id, SimTime t) const;
  /// Modeled transfer rate (MB/s) when the binding end sees `load`.
  double RateAtLoad(double load) const;

  const LoadPredictor* predictor_;
  CostModelOptions options_;
};

}  // namespace slacker::forecast

#endif  // SLACKER_FORECAST_COST_MODEL_H_
