#ifndef SLACKER_FORECAST_LOAD_PREDICTOR_H_
#define SLACKER_FORECAST_LOAD_PREDICTOR_H_

#include <cstdint>

#include "src/common/units.h"

namespace slacker::forecast {

/// What the cost model and scheduler need from a forecaster: a
/// normalized load prediction per server over future sim time. Load is
/// utilization-like — the fraction of the server's disk the workload is
/// expected to consume (0 idle, ~1 saturated; may exceed 1 under
/// overload). The production implementation is FleetLoadSampler; tests
/// substitute synthetic predictors.
class LoadPredictor {
 public:
  virtual ~LoadPredictor() = default;

  /// A usable forecast exists for this server (enough history, cycle
  /// detected or model seeded). Until then the scheduler falls back to
  /// reactive behaviour.
  virtual bool Ready(uint64_t server_id) const = 0;

  /// Predicted normalized load at absolute sim time `t` (>= now).
  virtual double PredictLoad(uint64_t server_id, SimTime t) const = 0;

  /// Upper confidence edge of the same prediction (PredictLoad plus the
  /// forecast-error band) — the cost model prices risk with this.
  virtual double PredictLoadUpper(uint64_t server_id, SimTime t) const = 0;

  /// Last observed normalized load (the most recent complete bucket).
  virtual double CurrentLoad(uint64_t server_id) const = 0;
};

}  // namespace slacker::forecast

#endif  // SLACKER_FORECAST_LOAD_PREDICTOR_H_
