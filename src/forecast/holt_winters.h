#ifndef SLACKER_FORECAST_HOLT_WINTERS_H_
#define SLACKER_FORECAST_HOLT_WINTERS_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/forecast/ring_buffer.h"

namespace slacker::forecast {

/// Additive Holt-Winters triple-exponential smoothing over a bucketed
/// load series: level + trend + a seasonal component of fixed length
/// (the detected cycle period, in buckets). Produces point forecasts
/// and a confidence band from the running one-step absolute error.
///
/// All state updates are plain double arithmetic in a fixed order, so
/// the same sample sequence yields a bit-identical forecast on every
/// platform/build this repo targets (no FMA contraction is assumed:
/// each statement is a single rounding site).
class HoltWintersForecaster {
 public:
  struct Options {
    /// Level smoothing in (0, 1).
    double alpha = 0.25;
    /// Trend smoothing in [0, 1).
    double beta = 0.02;
    /// Seasonal smoothing in [0, 1).
    double gamma = 0.15;
    /// EWMA weight of the one-step absolute-error tracker.
    double error_ewma = 0.10;

    Status Validate() const;
  };

  HoltWintersForecaster();
  explicit HoltWintersForecaster(Options options);

  /// (Re)seeds the model with season length `season_buckets` from the
  /// ring's history, then replays the remainder through Observe. The
  /// ring must hold at least one full season; returns InvalidArgument
  /// otherwise. `ring.first_index()` anchors the seasonal array to
  /// absolute bucket numbers, so forecasts line up with sim time.
  Status Seed(int season_buckets, const SampleRing& ring);

  /// Feeds the next bucket's sample (absolute bucket index = one past
  /// the previous). Requires a successful Seed first.
  void Observe(double value);

  bool seeded() const { return season_len_ > 0; }
  int season_buckets() const { return season_len_; }
  /// Absolute bucket index of the next sample Observe expects.
  uint64_t next_bucket() const { return next_bucket_; }

  /// Point forecast h buckets past the last observed sample (h >= 1;
  /// h == 0 returns the fitted value of the last bucket).
  double Forecast(int h) const;

  struct Band {
    double lo = 0.0;
    double mid = 0.0;
    double hi = 0.0;
  };
  /// Forecast with a +/- z * mae * sqrt(h) band (clamped at lo >= 0 —
  /// load is nonnegative).
  Band ForecastBand(int h, double z = 2.0) const;

  /// EWMA of |one-step-ahead error| — the forecast-error signal
  /// exported as a metric.
  double mean_abs_error() const { return mae_; }
  double level() const { return level_; }
  double trend() const { return trend_; }

 private:
  Options options_;
  int season_len_ = 0;
  double level_ = 0.0;
  double trend_ = 0.0;
  /// season_[b] applies to absolute buckets with (index % season_len)
  /// == b.
  std::vector<double> season_;
  uint64_t next_bucket_ = 0;
  double mae_ = 0.0;
  uint64_t observed_ = 0;
};

}  // namespace slacker::forecast

#endif  // SLACKER_FORECAST_HOLT_WINTERS_H_
