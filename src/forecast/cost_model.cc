#include "src/forecast/cost_model.h"

#include "src/common/invariant.h"

namespace slacker::forecast {

Status CostModelOptions::Validate() const {
  if (violation_knee <= 0.0 || violation_knee > 1.0) {
    return Status::InvalidArgument("violation_knee must be in (0, 1]");
  }
  if (migration_load_at_ceiling < 0.0 || migration_load_at_ceiling > 1.0) {
    return Status::InvalidArgument(
        "migration_load_at_ceiling must be in [0, 1]");
  }
  if (throttle_floor_mbps <= 0.0 ||
      throttle_ceiling_mbps < throttle_floor_mbps) {
    return Status::InvalidArgument("bad throttle floor/ceiling");
  }
  if (integration_step <= 0.0) {
    return Status::InvalidArgument("integration_step must be positive");
  }
  return Status::Ok();
}

MigrationCostModel::MigrationCostModel(const LoadPredictor* predictor,
                                       CostModelOptions options)
    : predictor_(predictor), options_(options) {
  SLACKER_CHECK(predictor != nullptr, "cost model needs a predictor");
}

double MigrationCostModel::LoadAt(uint64_t server_id, SimTime t) const {
  return options_.use_upper_band ? predictor_->PredictLoadUpper(server_id, t)
                                 : predictor_->PredictLoad(server_id, t);
}

double MigrationCostModel::RateAtLoad(double load) const {
  // The PID throttle drains rate as latency (≈ load) approaches the
  // setpoint: model it as a linear ramp from the ceiling at zero load
  // to the floor at the violation knee and beyond.
  double headroom = 1.0 - load / options_.violation_knee;
  if (headroom < 0.0) headroom = 0.0;
  if (headroom > 1.0) headroom = 1.0;
  return options_.throttle_floor_mbps +
         (options_.throttle_ceiling_mbps - options_.throttle_floor_mbps) *
             headroom;
}

MigrationCostEstimate MigrationCostModel::Price(uint64_t source_server,
                                                uint64_t target_server,
                                                uint64_t data_bytes,
                                                SimTime start) const {
  std::vector<uint64_t> ends;
  ends.push_back(source_server);
  if (target_server != source_server) ends.push_back(target_server);
  return PriceServers(ends, data_bytes, start);
}

MigrationCostEstimate MigrationCostModel::PriceServers(
    const std::vector<uint64_t>& servers, uint64_t data_bytes,
    SimTime start) const {
  MigrationCostEstimate estimate;
  estimate.start = start;
  if (servers.empty()) return estimate;

  // The binding end (highest predicted load at the start) sets the
  // modeled throttle rate, hence the duration.
  double start_load = 0.0;
  for (uint64_t id : servers) {
    const double load = LoadAt(id, start);
    if (load > start_load) start_load = load;
  }
  const double rate = RateAtLoad(start_load);
  estimate.rate_mbps = rate;
  const double mib = static_cast<double>(data_bytes) /
                     static_cast<double>(kMiB);
  estimate.duration_seconds = mib / rate;

  // Interference the stream adds to each end, scaled with the rate.
  const double interference = options_.migration_load_at_ceiling * rate /
                              options_.throttle_ceiling_mbps;

  // Integrate excess-weighted violation server-seconds over the
  // predicted window: each step where (predicted + interference)
  // clears the knee contributes its excess (in knee units) x step x
  // servers-in-violation seconds.
  const SimTime step = options_.integration_step;
  double violation = 0.0;
  const int steps =
      estimate.duration_seconds <= 0.0
          ? 0
          : static_cast<int>(estimate.duration_seconds / step) + 1;
  for (int i = 0; i < steps; ++i) {
    const SimTime t = start + static_cast<double>(i) * step;
    SimTime span = step;
    if (t + span > start + estimate.duration_seconds) {
      span = start + estimate.duration_seconds - t;
      if (span <= 0.0) break;
    }
    for (uint64_t id : servers) {
      const double load = LoadAt(id, t) + interference;
      if (load > options_.violation_knee) {
        violation += (load - options_.violation_knee) /
                     options_.violation_knee * span;
      }
    }
  }
  estimate.violation_seconds = violation;
  return estimate;
}

}  // namespace slacker::forecast
