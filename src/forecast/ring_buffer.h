#ifndef SLACKER_FORECAST_RING_BUFFER_H_
#define SLACKER_FORECAST_RING_BUFFER_H_

#include <cstddef>
#include <vector>

#include "src/common/invariant.h"

namespace slacker::forecast {

/// Fixed-capacity ring of equally spaced samples (one per bucket). Once
/// full, each push evicts the oldest sample. Index 0 is always the
/// oldest sample still held; `total_pushed()` gives the absolute bucket
/// index of the *next* sample, so callers can anchor ring-relative
/// indices to absolute bucket numbers (and therefore to sim time).
///
/// All accumulation helpers iterate oldest -> newest in index order so
/// results are bit-reproducible regardless of how the ring wrapped.
class SampleRing {
 public:
  explicit SampleRing(size_t capacity) : buf_(capacity) {
    SLACKER_CHECK(capacity > 0, "SampleRing capacity must be positive");
  }

  void Push(double value) {
    buf_[head_] = value;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
    ++total_pushed_;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }
  bool full() const { return size_ == buf_.size(); }
  /// Samples ever pushed; also the absolute bucket index of the next
  /// sample to be pushed.
  uint64_t total_pushed() const { return total_pushed_; }
  /// Absolute bucket index of ring slot 0 (the oldest held sample).
  uint64_t first_index() const { return total_pushed_ - size_; }

  /// i in [0, size): 0 is the oldest held sample.
  double at(size_t i) const {
    SLACKER_DCHECK(i < size_, "SampleRing index out of range");
    const size_t start = (head_ + buf_.size() - size_) % buf_.size();
    return buf_[(start + i) % buf_.size()];
  }

  /// Newest sample (requires size > 0).
  double back() const {
    SLACKER_CHECK(size_ > 0, "SampleRing::back on empty ring");
    return at(size_ - 1);
  }

  /// Mean over held samples, accumulated oldest -> newest.
  double Mean() const {
    if (size_ == 0) return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < size_; ++i) sum += at(i);
    return sum / static_cast<double>(size_);
  }

 private:
  std::vector<double> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t total_pushed_ = 0;
};

}  // namespace slacker::forecast

#endif  // SLACKER_FORECAST_RING_BUFFER_H_
