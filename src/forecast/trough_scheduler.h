#ifndef SLACKER_FORECAST_TROUGH_SCHEDULER_H_
#define SLACKER_FORECAST_TROUGH_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/forecast/cost_model.h"
#include "src/obs/trace.h"

namespace slacker::forecast {

struct TroughSchedulerOptions {
  /// How far ahead candidate start times are searched.
  SimTime horizon_seconds = 900.0;
  /// Candidate spacing inside the horizon.
  SimTime candidate_stride = 15.0;
  /// Hard bound on deferral: work submitted at t is forced runnable by
  /// t + fallback_deadline even if no trough ever arrives.
  SimTime fallback_deadline = 900.0;
  /// Defer only when the best candidate saves at least this many
  /// predicted violation server-seconds over starting now — a marginal
  /// saving is not worth sitting on work.
  double min_saving_seconds = 1.0;

  Status Validate() const;
};

/// A unit of deferrable work (one planned migration, or one upgrade
/// wave's drain). `key` identifies the work across repeated Decide
/// calls — the first call pins the schedule (start + deadline), later
/// calls report it.
struct WorkRequest {
  uint64_t key = 0;
  uint64_t tenant_id = 0;
  uint64_t source_server = 0;
  uint64_t target_server = 0;
  /// Extra servers priced into every candidate (upgrade waves).
  std::vector<uint64_t> extra_servers;
  uint64_t data_bytes = 0;
  /// "consolidation", "drain", "upgrade-wave", ... (trace vocabulary).
  std::string kind;
  /// Urgent work is never deferred: Decide returns run-now
  /// unconditionally (relief migrations).
  bool urgent = false;
};

struct ScheduleDecision {
  bool run_now = true;
  /// When the work should start (== the Decide time when run_now).
  SimTime scheduled_start = 0.0;
  /// Hard deferral bound carried by the deferred plan.
  SimTime deadline = 0.0;
  /// Predicted violation server-seconds of starting now vs at the
  /// scheduled start (equal when run_now).
  double cost_now = 0.0;
  double cost_scheduled = 0.0;
  /// "urgent", "no-forecast", "no-better-trough", "trough-start",
  /// "deadline", "trough-wait".
  std::string reason;
};

/// Assigns non-urgent work into predicted load troughs under deadlines:
/// candidate start times across the horizon are priced with the
/// migration cost model, and the cheapest (earliest on ties) wins. A
/// pinned schedule is sticky — the work runs at its scheduled start or
/// its fallback deadline, whichever comes first — so a drifting
/// forecast cannot starve work forever. Urgent work always runs now.
class TroughScheduler {
 public:
  /// `model` must outlive the scheduler. `tracer` (nullable) receives
  /// TroughScheduled events; fetched lazily so benches installing the
  /// tracer later still trace.
  TroughScheduler(const MigrationCostModel* model,
                  TroughSchedulerOptions options,
                  std::function<obs::Tracer*()> tracer = nullptr);

  /// The scheduling verdict for `work` at time `now`. Deterministic:
  /// the same call sequence yields the same decisions.
  ScheduleDecision Decide(const WorkRequest& work, SimTime now);

  /// The work launched (or its plan vanished): forget the pinned
  /// schedule so a future plan for the same key is re-priced fresh.
  void Complete(uint64_t key);

  /// Drops pinned schedules whose deadline passed more than
  /// `grace_seconds` ago without launching (their plans evaporated).
  void Prune(SimTime now, SimTime grace_seconds = 300.0);

  size_t pending() const { return pending_.size(); }
  const TroughSchedulerOptions& options() const { return options_; }

  /// Counters for benches/tests.
  struct Stats {
    uint64_t decided_now = 0;
    uint64_t scheduled = 0;
    uint64_t held = 0;
    uint64_t released_trough = 0;
    uint64_t released_deadline = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PinnedWork {
    SimTime submitted = 0.0;
    SimTime scheduled_start = 0.0;
    SimTime deadline = 0.0;
    double cost_now = 0.0;
    double cost_scheduled = 0.0;
  };

  const MigrationCostModel* model_;
  TroughSchedulerOptions options_;
  std::function<obs::Tracer*()> tracer_;
  /// key -> pinned schedule (ordered: determinism under iteration).
  std::map<uint64_t, PinnedWork> pending_;
  Stats stats_;
};

}  // namespace slacker::forecast

#endif  // SLACKER_FORECAST_TROUGH_SCHEDULER_H_
