#include "src/forecast/sampler.h"

#include <cmath>
#include <string>

#include "src/obs/events.h"

namespace slacker::forecast {

Status ForecastOptions::Validate() const {
  if (bucket_seconds <= 0.0) {
    return Status::InvalidArgument("bucket_seconds must be positive");
  }
  if (history_buckets < 4) {
    return Status::InvalidArgument("history_buckets must be >= 4");
  }
  if (seconds_per_op <= 0.0) {
    return Status::InvalidArgument("seconds_per_op must be positive");
  }
  if (redetect_buckets < 1) {
    return Status::InvalidArgument("redetect_buckets must be >= 1");
  }
  if (band_z < 0.0) {
    return Status::InvalidArgument("band_z must be >= 0");
  }
  if (history_buckets <
      static_cast<size_t>(2 * cycle.max_period_buckets)) {
    return Status::InvalidArgument(
        "history_buckets must cover 2x the max candidate period");
  }
  SLACKER_RETURN_IF_ERROR(cycle.Validate());
  SLACKER_RETURN_IF_ERROR(holt_winters.Validate());
  return Status::Ok();
}

FleetLoadSampler::FleetLoadSampler(FleetOpsSource* source,
                                   ForecastOptions options)
    : source_(source),
      sim_(source->simulator()),
      options_(options),
      detector_(options.cycle) {
  servers_.reserve(source->num_servers());
  for (size_t i = 0; i < source->num_servers(); ++i) {
    servers_.push_back(std::make_unique<ServerState>(options_));
  }
}

FleetLoadSampler::~FleetLoadSampler() { Stop(); }

Status FleetLoadSampler::Start() {
  SLACKER_RETURN_IF_ERROR(options_.Validate());
  if (running_) return Status::FailedPrecondition("sampler already running");
  epoch_ = sim_->Now();
  buckets_sampled_ = 0;
  // Fresh ops baseline so the first bucket observes exactly one bucket
  // of throughput.
  ops_baseline_.clear();
  for (uint64_t sid = 0; sid < source_->num_servers(); ++sid) {
    for (uint64_t tenant_id : source_->SampledTenantsOn(sid)) {
      uint64_t ops = 0;
      if (source_->TenantOpsExecuted(sid, tenant_id, &ops)) {
        ops_baseline_[tenant_id] = ops;
      }
    }
  }
  timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, options_.bucket_seconds, [this](SimTime now) { OnBucket(now); });
  timer_->Start();
  running_ = true;
  return Status::Ok();
}

void FleetLoadSampler::Stop() {
  running_ = false;
  if (timer_ != nullptr) timer_->Stop();
}

void FleetLoadSampler::SampleNow() { OnBucket(sim_->Now()); }

int64_t FleetLoadSampler::BucketIndexAt(SimTime t) const {
  const double rel = (t - epoch_) / options_.bucket_seconds;
  if (rel <= 0.0) return 0;
  return static_cast<int64_t>(rel);
}

void FleetLoadSampler::OnBucket(SimTime now) {
  ++buckets_sampled_;
  // Per-tenant throughput deltas, walked in (server id, tenant id)
  // order; aggregate each server's normalized load as it goes.
  for (uint64_t sid = 0; sid < source_->num_servers(); ++sid) {
    double ops_per_sec = 0.0;
    for (uint64_t tenant_id : source_->SampledTenantsOn(sid)) {
      uint64_t total = 0;
      uint64_t delta = 0;
      if (source_->TenantOpsExecuted(sid, tenant_id, &total)) {
        const auto it = ops_baseline_.find(tenant_id);
        const uint64_t prev = it == ops_baseline_.end() ? 0 : it->second;
        // A counter that moved backwards means the tenant was rebuilt
        // (migration handover, crash recovery): restart the baseline.
        delta = total >= prev ? total - prev : total;
        ops_baseline_[tenant_id] = total;
      }
      const double rate =
          static_cast<double>(delta) / options_.bucket_seconds;
      ops_per_sec += rate;
      auto ring_it = tenants_.find(tenant_id);
      if (ring_it == tenants_.end()) {
        ring_it = tenants_
                      .emplace(tenant_id, std::make_unique<SampleRing>(
                                              options_.history_buckets))
                      .first;
      }
      ring_it->second->Push(rate);
    }

    ServerState& state = *servers_[sid];
    const double load = ops_per_sec * options_.seconds_per_op;
    state.ring.Push(load);
    if (state.model.seeded() &&
        state.model.next_bucket() + 1 == state.ring.total_pushed()) {
      state.model.Observe(load);
    }

    if (buckets_sampled_ % static_cast<uint64_t>(options_.redetect_buckets) ==
        0) {
      state.cycle = detector_.Detect(state.ring);
      if (state.cycle.periodic) {
        const int season =
            state.model.seeded() ? state.model.season_buckets() : 0;
        const int diff = season - state.cycle.period_buckets;
        // Hysteresis: a +/-1 bucket wobble in the detected period is
        // estimation noise on a noisy series — reseeding on it would
        // throw away the fitted seasonal state and reset the error
        // estimate every redetect. Only adopt a decisively new period.
        // Seed failure (insufficient history) just means we stay
        // unseeded until the next detection pass.
        if (!state.model.seeded() || diff > 1 || diff < -1) {
          (void)state.model.Seed(state.cycle.period_buckets, state.ring);
        }
      }
      EmitForecastUpdated(sid, state, now);
    }
  }
}

bool FleetLoadSampler::Ready(uint64_t server_id) const {
  if (server_id >= servers_.size()) return false;
  const ServerState& state = *servers_[server_id];
  return state.cycle.periodic && state.model.seeded();
}

double FleetLoadSampler::CurrentLoad(uint64_t server_id) const {
  if (server_id >= servers_.size()) return 0.0;
  const SampleRing& ring = servers_[server_id]->ring;
  return ring.size() == 0 ? 0.0 : ring.back();
}

double FleetLoadSampler::PredictLoad(uint64_t server_id, SimTime t) const {
  if (!Ready(server_id)) return CurrentLoad(server_id);
  const ServerState& state = *servers_[server_id];
  const int64_t last =
      static_cast<int64_t>(state.model.next_bucket()) - 1;
  int64_t h = BucketIndexAt(t) - last;
  if (h < 1) h = 1;
  const double predicted = state.model.Forecast(static_cast<int>(h));
  return predicted < 0.0 ? 0.0 : predicted;
}

double FleetLoadSampler::PredictLoadUpper(uint64_t server_id,
                                          SimTime t) const {
  if (!Ready(server_id)) return CurrentLoad(server_id);
  const ServerState& state = *servers_[server_id];
  const int64_t last =
      static_cast<int64_t>(state.model.next_bucket()) - 1;
  int64_t h = BucketIndexAt(t) - last;
  if (h < 1) h = 1;
  return state.model.ForecastBand(static_cast<int>(h), options_.band_z).hi;
}

const CycleEstimate& FleetLoadSampler::cycle(uint64_t server_id) const {
  SLACKER_CHECK(server_id < servers_.size(), "bad server id");
  return servers_[server_id]->cycle;
}

const SampleRing& FleetLoadSampler::server_ring(uint64_t server_id) const {
  SLACKER_CHECK(server_id < servers_.size(), "bad server id");
  return servers_[server_id]->ring;
}

const SampleRing* FleetLoadSampler::tenant_ring(uint64_t tenant_id) const {
  const auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : it->second.get();
}

const HoltWintersForecaster& FleetLoadSampler::forecaster(
    uint64_t server_id) const {
  SLACKER_CHECK(server_id < servers_.size(), "bad server id");
  return servers_[server_id]->model;
}

SimTime FleetLoadSampler::NextTroughStart(uint64_t server_id,
                                          SimTime now) const {
  if (server_id >= servers_.size()) return now;
  const CycleEstimate& cycle = servers_[server_id]->cycle;
  if (!cycle.periodic) return now;
  const int period = cycle.period_buckets;
  int64_t bucket = BucketIndexAt(now);
  for (int i = 0; i < period; ++i, ++bucket) {
    if (static_cast<int>(bucket % period) == cycle.trough_phase) {
      const SimTime start =
          epoch_ + static_cast<double>(bucket) * options_.bucket_seconds;
      return start < now ? now : start;
    }
  }
  return now;
}

void FleetLoadSampler::EmitForecastUpdated(uint64_t server_id,
                                           const ServerState& state,
                                           SimTime now) {
  obs::Tracer* tracer = source_->tracer();
  if (tracer == nullptr) return;
  const std::string label = "server=" + std::to_string(server_id);
  tracer->registry()
      ->FindOrCreateGauge("forecast_mae", label)
      ->Set(state.model.seeded() ? state.model.mean_abs_error() : 0.0);
  tracer->registry()
      ->FindOrCreateGauge("forecast_period_s", label)
      ->Set(state.cycle.periodic
                ? state.cycle.period_buckets * options_.bucket_seconds
                : 0.0);

  obs::ForecastUpdated e;
  e.server_id = server_id;
  e.periodic = state.cycle.periodic;
  e.period_seconds = state.cycle.period_buckets * options_.bucket_seconds;
  e.trough_phase_seconds =
      state.cycle.trough_phase * options_.bucket_seconds;
  e.confidence = state.cycle.confidence;
  e.current_load = CurrentLoad(server_id);
  e.predicted_load =
      state.model.seeded() ? PredictLoad(server_id, now) : 0.0;
  e.mean_abs_error =
      state.model.seeded() ? state.model.mean_abs_error() : 0.0;
  e.next_trough_start = NextTroughStart(server_id, now);
  obs::EmitForecastUpdated(tracer, e);
}

}  // namespace slacker::forecast
