#include "src/forecast/trough_scheduler.h"

#include <utility>

#include "src/common/invariant.h"
#include "src/obs/events.h"

namespace slacker::forecast {

Status TroughSchedulerOptions::Validate() const {
  if (horizon_seconds <= 0.0) {
    return Status::InvalidArgument("horizon_seconds must be positive");
  }
  if (candidate_stride <= 0.0 || candidate_stride > horizon_seconds) {
    return Status::InvalidArgument(
        "candidate_stride must be in (0, horizon]");
  }
  if (fallback_deadline <= 0.0) {
    return Status::InvalidArgument("fallback_deadline must be positive");
  }
  if (min_saving_seconds < 0.0) {
    return Status::InvalidArgument("min_saving_seconds must be >= 0");
  }
  return Status::Ok();
}

TroughScheduler::TroughScheduler(const MigrationCostModel* model,
                                 TroughSchedulerOptions options,
                                 std::function<obs::Tracer*()> tracer)
    : model_(model), options_(options), tracer_(std::move(tracer)) {
  SLACKER_CHECK(model != nullptr, "scheduler needs a cost model");
}

ScheduleDecision TroughScheduler::Decide(const WorkRequest& work,
                                         SimTime now) {
  ScheduleDecision decision;
  decision.scheduled_start = now;
  decision.deadline = now + options_.fallback_deadline;

  if (work.urgent) {
    ++stats_.decided_now;
    decision.reason = "urgent";
    return decision;
  }

  // A pinned schedule is sticky: report it until start or deadline.
  const auto pinned = pending_.find(work.key);
  if (pinned != pending_.end()) {
    const PinnedWork& p = pinned->second;
    decision.scheduled_start = p.scheduled_start;
    decision.deadline = p.deadline;
    decision.cost_now = p.cost_now;
    decision.cost_scheduled = p.cost_scheduled;
    if (now >= p.deadline) {
      decision.run_now = true;
      decision.reason = "deadline";
      ++stats_.released_deadline;
      return decision;
    }
    if (now + 1e-9 >= p.scheduled_start) {
      decision.run_now = true;
      decision.reason = "trough-start";
      ++stats_.released_trough;
      return decision;
    }
    decision.run_now = false;
    decision.reason = "trough-wait";
    ++stats_.held;
    return decision;
  }

  // Servers this work touches; without a forecast for all of them the
  // scheduler has nothing to plan with — run reactively.
  std::vector<uint64_t> ends;
  ends.push_back(work.source_server);
  if (work.target_server != work.source_server) {
    ends.push_back(work.target_server);
  }
  for (uint64_t id : work.extra_servers) ends.push_back(id);
  const LoadPredictor* predictor = model_->predictor();
  for (uint64_t id : ends) {
    if (!predictor->Ready(id)) {
      ++stats_.decided_now;
      decision.reason = "no-forecast";
      return decision;
    }
  }

  // Price candidate starts across the horizon (never past the
  // deadline); cheapest wins, earliest on ties.
  const SimTime deadline = now + options_.fallback_deadline;
  SimTime last_candidate = now + options_.horizon_seconds;
  if (last_candidate > deadline) last_candidate = deadline;
  MigrationCostEstimate best;
  bool have_best = false;
  MigrationCostEstimate now_cost;
  for (SimTime t = now; t <= last_candidate + 1e-9;
       t += options_.candidate_stride) {
    const MigrationCostEstimate cost =
        model_->PriceServers(ends, work.data_bytes, t);
    if (t <= now + 1e-9) now_cost = cost;
    if (!have_best || cost.violation_seconds < best.violation_seconds) {
      have_best = true;
      best = cost;
    }
  }
  decision.cost_now = now_cost.violation_seconds;
  decision.cost_scheduled = best.violation_seconds;
  decision.deadline = deadline;

  const double saving = now_cost.violation_seconds - best.violation_seconds;
  if (!have_best || best.start <= now + 1e-9 ||
      saving < options_.min_saving_seconds) {
    ++stats_.decided_now;
    decision.reason = "no-better-trough";
    return decision;
  }

  PinnedWork p;
  p.submitted = now;
  p.scheduled_start = best.start;
  p.deadline = deadline;
  p.cost_now = now_cost.violation_seconds;
  p.cost_scheduled = best.violation_seconds;
  pending_.emplace(work.key, p);
  ++stats_.scheduled;
  ++stats_.held;

  decision.run_now = false;
  decision.scheduled_start = best.start;
  decision.reason = "trough-wait";

  if (tracer_) {
    obs::TroughScheduled e;
    e.tenant_id = work.tenant_id;
    e.source_server = work.source_server;
    e.target_server = work.target_server;
    e.kind = work.kind;
    e.scheduled_start = best.start;
    e.deadline = deadline;
    e.cost_now = now_cost.violation_seconds;
    e.cost_scheduled = best.violation_seconds;
    obs::EmitTroughScheduled(tracer_(), e);
  }
  return decision;
}

void TroughScheduler::Complete(uint64_t key) { pending_.erase(key); }

void TroughScheduler::Prune(SimTime now, SimTime grace_seconds) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now > it->second.deadline + grace_seconds) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace slacker::forecast
