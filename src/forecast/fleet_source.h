#ifndef SLACKER_FORECAST_FLEET_SOURCE_H_
#define SLACKER_FORECAST_FLEET_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/simulator.h"

namespace slacker::obs {
class Tracer;  // src/obs/trace.h — optional, nullptr means untraced.
}

namespace slacker::forecast {

/// What the forecast sampler needs from the fleet it observes. Cluster
/// (src/slacker) implements this, keeping the dependency pointing
/// downward — slacker depends on forecast, never the reverse — so the
/// forecast subsystem stays reusable and the module graph acyclic.
class FleetOpsSource {
 public:
  virtual ~FleetOpsSource() = default;

  virtual sim::Simulator* simulator() = 0;
  /// Event/metric sink; nullptr disables forecast telemetry.
  virtual obs::Tracer* tracer() { return nullptr; }

  /// Servers are ids [0, num_servers()).
  virtual size_t num_servers() const = 0;

  /// Tenant ids currently placed on `server_id`, in a deterministic
  /// order (the sampler walks them to aggregate per-server load).
  virtual std::vector<uint64_t> SampledTenantsOn(uint64_t server_id) = 0;

  /// Cumulative executed-op counter of a tenant's live instance on
  /// `server_id`. Returns false when the tenant has no live instance
  /// there (mid-handover, crashed): the sampler then records zero
  /// throughput for the bucket and keeps the previous baseline.
  virtual bool TenantOpsExecuted(uint64_t server_id, uint64_t tenant_id,
                                 uint64_t* ops) = 0;
};

}  // namespace slacker::forecast

#endif  // SLACKER_FORECAST_FLEET_SOURCE_H_
