#ifndef SLACKER_FORECAST_SAMPLER_H_
#define SLACKER_FORECAST_SAMPLER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/forecast/cycle_detector.h"
#include "src/forecast/fleet_source.h"
#include "src/forecast/holt_winters.h"
#include "src/forecast/load_predictor.h"
#include "src/forecast/ring_buffer.h"
#include "src/sim/simulator.h"

namespace slacker::forecast {

struct ForecastOptions {
  /// Sampling bucket width (simulated seconds). Each bucket records the
  /// mean throughput over the bucket, so this is also the forecast
  /// granularity.
  SimTime bucket_seconds = 5.0;
  /// Ring capacity per server/tenant, in buckets.
  size_t history_buckets = 512;
  /// Disk-busy seconds one executed operation costs — converts ops/s
  /// into the utilization-like load signal the predictions are in. The
  /// default matches the calibrated paper disk at the fleet benches'
  /// buffer-pool sizing (~0.073 busy seconds per 10-op transaction);
  /// benches override it with their exact per-op cost.
  double seconds_per_op = 0.007;
  /// Re-run cycle detection every this many buckets.
  int redetect_buckets = 16;
  /// Confidence-band width (z * mae * sqrt(h)) for PredictLoadUpper.
  double band_z = 2.0;

  CycleDetector::Options cycle;
  HoltWintersForecaster::Options holt_winters;

  Status Validate() const;
};

/// The forecast subsystem's sensor + model: a periodic sampler reading
/// per-tenant executed-op counters into fixed-capacity rings, a
/// per-server aggregate load series, an online cycle detector that
/// discovers period and trough phase, and a Holt-Winters seasonal
/// forecaster seeded from the detected cycle. Implements LoadPredictor
/// for the migration cost model / trough scheduler.
///
/// Everything is driven by the sim clock; sampling order is server id
/// then tenant id, so runs are bit-reproducible.
class FleetLoadSampler : public LoadPredictor {
 public:
  /// `source` is the fleet under observation (usually the Cluster,
  /// which implements FleetOpsSource); it must outlive the sampler.
  FleetLoadSampler(FleetOpsSource* source, ForecastOptions options);
  ~FleetLoadSampler() override;

  FleetLoadSampler(const FleetLoadSampler&) = delete;
  FleetLoadSampler& operator=(const FleetLoadSampler&) = delete;

  /// Validates options and arms the periodic sampler (first bucket
  /// closes one bucket_seconds from now).
  Status Start();
  void Stop();
  bool running() const { return running_; }

  /// Runs one bucket boundary immediately (tests/benches).
  void SampleNow();

  // --- LoadPredictor ----------------------------------------------
  bool Ready(uint64_t server_id) const override;
  double PredictLoad(uint64_t server_id, SimTime t) const override;
  double PredictLoadUpper(uint64_t server_id, SimTime t) const override;
  double CurrentLoad(uint64_t server_id) const override;

  // --- Introspection ----------------------------------------------
  const CycleEstimate& cycle(uint64_t server_id) const;
  const SampleRing& server_ring(uint64_t server_id) const;
  /// nullptr until the tenant has been sampled at least once.
  const SampleRing* tenant_ring(uint64_t tenant_id) const;
  const HoltWintersForecaster& forecaster(uint64_t server_id) const;
  /// Start of the next predicted trough bucket at or after `now`
  /// (server's detected cycle); returns `now` when no cycle is known.
  SimTime NextTroughStart(uint64_t server_id, SimTime now) const;
  const ForecastOptions& options() const { return options_; }
  uint64_t buckets_sampled() const { return buckets_sampled_; }

 private:
  struct ServerState {
    SampleRing ring;
    HoltWintersForecaster model;
    CycleEstimate cycle;
    explicit ServerState(const ForecastOptions& options)
        : ring(options.history_buckets), model(options.holt_winters) {}
  };

  void OnBucket(SimTime now);
  /// Absolute bucket index covering time `t`.
  int64_t BucketIndexAt(SimTime t) const;
  void EmitForecastUpdated(uint64_t server_id, const ServerState& state,
                           SimTime now);

  FleetOpsSource* source_;
  sim::Simulator* sim_;
  ForecastOptions options_;
  CycleDetector detector_;
  std::unique_ptr<sim::PeriodicTimer> timer_;
  std::vector<std::unique_ptr<ServerState>> servers_;
  /// tenant id -> throughput ring (ordered for deterministic metrics).
  std::map<uint64_t, std::unique_ptr<SampleRing>> tenants_;
  /// tenant id -> cumulative ops at the last bucket boundary.
  std::map<uint64_t, uint64_t> ops_baseline_;
  SimTime epoch_ = 0.0;
  uint64_t buckets_sampled_ = 0;
  bool running_ = false;
};

}  // namespace slacker::forecast

#endif  // SLACKER_FORECAST_SAMPLER_H_
