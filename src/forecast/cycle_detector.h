#ifndef SLACKER_FORECAST_CYCLE_DETECTOR_H_
#define SLACKER_FORECAST_CYCLE_DETECTOR_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/forecast/ring_buffer.h"

namespace slacker::forecast {

/// What the detector discovered about a load series.
struct CycleEstimate {
  /// A period was found with confidence >= min_confidence.
  bool periodic = false;
  /// Discovered period, in buckets.
  int period_buckets = 0;
  /// Trough phase: absolute bucket index mod period of the phase bin
  /// with the lowest average load. A bucket b is "in the trough" when
  /// the circular distance of (b mod period) from this bin is small.
  int trough_phase = 0;
  /// Peak autocorrelation at the chosen lag, in [-1, 1].
  double confidence = 0.0;
};

/// Online cycle detector: normalized autocorrelation of a bucketed load
/// series over a candidate lag range. Deterministic — accumulation runs
/// in fixed index order and ties break toward the smallest lag, so the
/// same samples always yield the same estimate (the fundamental period
/// wins over its harmonics, whose correlation can only tie it).
class CycleDetector {
 public:
  struct Options {
    /// Candidate period range, in buckets. The series must hold at
    /// least 2x max_period_buckets samples before detection fires.
    int min_period_buckets = 8;
    int max_period_buckets = 256;
    /// Autocorrelation below this is noise, not a cycle.
    double min_confidence = 0.4;
    /// A candidate within this fraction of the best correlation is a
    /// tie; the smallest such lag wins (harmonic rejection).
    double tie_fraction = 0.05;

    Status Validate() const;
  };

  CycleDetector();
  explicit CycleDetector(Options options);

  /// Runs detection over the ring. Uses ring.first_index() to anchor
  /// the trough phase to absolute bucket numbers.
  CycleEstimate Detect(const SampleRing& ring) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Circular distance between two phase bins under `period`.
int PhaseDistance(int a, int b, int period);

}  // namespace slacker::forecast

#endif  // SLACKER_FORECAST_CYCLE_DETECTOR_H_
