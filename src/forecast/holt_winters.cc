#include "src/forecast/holt_winters.h"

#include <cmath>

namespace slacker::forecast {

Status HoltWintersForecaster::Options::Validate() const {
  if (alpha <= 0.0 || alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (beta < 0.0 || beta >= 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1)");
  }
  if (gamma < 0.0 || gamma >= 1.0) {
    return Status::InvalidArgument("gamma must be in [0, 1)");
  }
  if (error_ewma <= 0.0 || error_ewma >= 1.0) {
    return Status::InvalidArgument("error_ewma must be in (0, 1)");
  }
  return Status::Ok();
}

HoltWintersForecaster::HoltWintersForecaster()
    : HoltWintersForecaster(Options()) {}

HoltWintersForecaster::HoltWintersForecaster(Options options)
    : options_(options) {}

Status HoltWintersForecaster::Seed(int season_buckets,
                                   const SampleRing& ring) {
  SLACKER_RETURN_IF_ERROR(options_.Validate());
  if (season_buckets < 2) {
    return Status::InvalidArgument("season must be >= 2 buckets");
  }
  const size_t m = static_cast<size_t>(season_buckets);
  if (ring.size() < m) {
    return Status::InvalidArgument("need one full season to seed");
  }

  // Seed from the oldest full season: level = season mean, per-bin
  // seasonal offsets = bin value - mean, trend = mean bucket-to-bucket
  // drift between the first and second season when available.
  double first_mean = 0.0;
  for (size_t i = 0; i < m; ++i) first_mean += ring.at(i);
  first_mean /= static_cast<double>(m);

  season_len_ = season_buckets;
  season_.assign(m, 0.0);
  const uint64_t first = ring.first_index();
  for (size_t i = 0; i < m; ++i) {
    season_[(first + i) % m] = ring.at(i) - first_mean;
  }
  level_ = first_mean;
  trend_ = 0.0;
  if (ring.size() >= 2 * m) {
    double second_mean = 0.0;
    for (size_t i = m; i < 2 * m; ++i) second_mean += ring.at(i);
    second_mean /= static_cast<double>(m);
    trend_ = (second_mean - first_mean) / static_cast<double>(m);
  }
  mae_ = 0.0;
  observed_ = 0;
  next_bucket_ = first + m;

  // Replay the rest of the history through the regular update, so a
  // freshly seeded model and one updated online agree.
  for (size_t i = m; i < ring.size(); ++i) Observe(ring.at(i));
  return Status::Ok();
}

void HoltWintersForecaster::Observe(double value) {
  SLACKER_CHECK(season_len_ > 0, "Observe before Seed");
  const size_t bin = static_cast<size_t>(next_bucket_ %
                                         static_cast<uint64_t>(season_len_));
  const double predicted = level_ + trend_ + season_[bin];
  const double err = value - predicted;
  const double abs_err = err < 0.0 ? -err : err;
  if (observed_ == 0) {
    mae_ = abs_err;
  } else {
    mae_ = mae_ + options_.error_ewma * (abs_err - mae_);
  }

  const double prev_level = level_;
  level_ = options_.alpha * (value - season_[bin]) +
           (1.0 - options_.alpha) * (level_ + trend_);
  trend_ = options_.beta * (level_ - prev_level) +
           (1.0 - options_.beta) * trend_;
  season_[bin] = options_.gamma * (value - level_) +
                 (1.0 - options_.gamma) * season_[bin];

  ++next_bucket_;
  ++observed_;
}

double HoltWintersForecaster::Forecast(int h) const {
  SLACKER_CHECK(season_len_ > 0, "Forecast before Seed");
  if (h < 0) h = 0;
  const uint64_t bucket = next_bucket_ + static_cast<uint64_t>(h) - 1;
  const size_t bin =
      static_cast<size_t>(bucket % static_cast<uint64_t>(season_len_));
  return level_ + static_cast<double>(h) * trend_ + season_[bin];
}

HoltWintersForecaster::Band HoltWintersForecaster::ForecastBand(
    int h, double z) const {
  Band band;
  band.mid = Forecast(h);
  const double spread =
      z * mae_ * std::sqrt(static_cast<double>(h < 1 ? 1 : h));
  band.lo = band.mid - spread;
  if (band.lo < 0.0) band.lo = 0.0;
  band.hi = band.mid + spread;
  return band;
}

}  // namespace slacker::forecast
