#include "src/forecast/cycle_detector.h"

#include <cmath>
#include <vector>

namespace slacker::forecast {

Status CycleDetector::Options::Validate() const {
  if (min_period_buckets < 2) {
    return Status::InvalidArgument("min_period_buckets must be >= 2");
  }
  if (max_period_buckets < min_period_buckets) {
    return Status::InvalidArgument(
        "max_period_buckets must be >= min_period_buckets");
  }
  if (min_confidence <= 0.0 || min_confidence >= 1.0) {
    return Status::InvalidArgument("min_confidence must be in (0, 1)");
  }
  if (tie_fraction < 0.0 || tie_fraction >= 1.0) {
    return Status::InvalidArgument("tie_fraction must be in [0, 1)");
  }
  return Status::Ok();
}

CycleDetector::CycleDetector() : CycleDetector(Options()) {}

CycleDetector::CycleDetector(Options options) : options_(options) {}

int PhaseDistance(int a, int b, int period) {
  int d = (a - b) % period;
  if (d < 0) d += period;
  return d <= period - d ? d : period - d;
}

CycleEstimate CycleDetector::Detect(const SampleRing& ring) const {
  CycleEstimate estimate;
  const size_t n = ring.size();
  // Two full candidate periods of history, so every lag in range has at
  // least one period's worth of overlapping pairs.
  if (n < static_cast<size_t>(2 * options_.max_period_buckets)) {
    return estimate;
  }

  // Copy out once: Detect is O(n * lags) over random indices, and the
  // modular arithmetic inside SampleRing::at would dominate.
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = ring.at(i);

  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) mean += x[i];
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (size_t i = 0; i < n; ++i) {
    variance += (x[i] - mean) * (x[i] - mean);
  }
  if (variance <= 1e-12) return estimate;  // Flat series: no cycle.

  // r(L) = sum_i (x[i]-m)(x[i-L]-m) / sum_i (x[i]-m)^2, best lag wins.
  double best_r = 0.0;
  int best_lag = 0;
  std::vector<double> correlations;
  correlations.reserve(options_.max_period_buckets -
                       options_.min_period_buckets + 1);
  for (int lag = options_.min_period_buckets;
       lag <= options_.max_period_buckets; ++lag) {
    double num = 0.0;
    for (size_t i = lag; i < n; ++i) {
      num += (x[i] - mean) * (x[i - lag] - mean);
    }
    // Normalize by the pair count so short-overlap (large) lags are not
    // penalized relative to small ones.
    const double r = (num / static_cast<double>(n - lag)) /
                     (variance / static_cast<double>(n));
    correlations.push_back(r);
    if (r > best_r) {
      best_r = r;
      best_lag = lag;
    }
  }
  if (best_lag == 0 || best_r < options_.min_confidence) return estimate;

  // Harmonic rejection: when the best lag is a multiple of a smaller
  // lag whose correlation ties it (within tie_fraction), the smaller
  // lag is the fundamental period. Only near-exact divisors qualify —
  // for a smooth cycle the correlation at best_lag +/- 1 also "ties",
  // but those neighbors are phase drift, not harmonics.
  int chosen = best_lag;
  for (int lag = options_.min_period_buckets; lag < best_lag; ++lag) {
    const int multiple = (best_lag + lag / 2) / lag;
    if (multiple < 2) continue;
    const int remainder = best_lag - multiple * lag;
    if (remainder > 1 || remainder < -1) continue;
    const double r = correlations[lag - options_.min_period_buckets];
    if (r >= best_r * (1.0 - options_.tie_fraction)) {
      chosen = lag;
      break;
    }
  }

  // Phase: average the series per phase bin (absolute bucket index mod
  // period); the minimum bin is the trough.
  std::vector<double> bin_sum(chosen, 0.0);
  std::vector<int> bin_count(chosen, 0);
  const uint64_t first = ring.first_index();
  for (size_t i = 0; i < n; ++i) {
    const int bin = static_cast<int>((first + i) % chosen);
    bin_sum[bin] += x[i];
    ++bin_count[bin];
  }
  int trough = 0;
  double trough_avg = 0.0;
  bool have = false;
  for (int bin = 0; bin < chosen; ++bin) {
    if (bin_count[bin] == 0) continue;
    const double avg = bin_sum[bin] / static_cast<double>(bin_count[bin]);
    if (!have || avg < trough_avg) {
      have = true;
      trough_avg = avg;
      trough = bin;
    }
  }

  estimate.periodic = true;
  estimate.period_buckets = chosen;
  estimate.trough_phase = trough;
  estimate.confidence = best_r;
  return estimate;
}

}  // namespace slacker::forecast
