#ifndef SLACKER_RANGE_RANGE_DIRECTORY_H_
#define SLACKER_RANGE_RANGE_DIRECTORY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/range/key_range.h"

namespace slacker::range {

/// A range with its owning server — one row of the router's table.
struct OwnedRange {
  KeyRange range;
  uint64_t server = 0;

  bool operator==(const OwnedRange& other) const = default;
};

/// The range-ownership router (DESIGN.md §16): for each tenant, an
/// ordered map from range start key to (end, owning server). The ranges
/// of a tenant always partition [0, kNoUpperBound), so OwnerOf is a
/// total function over registered tenants — a tenant may span several
/// servers both mid-migration and at rest (a split tenant).
///
/// This complements (does not replace) the per-tenant TenantDirectory:
/// the flat directory keeps answering "the tenant's primary server" for
/// consumers that think in whole tenants (rebalancer stats, recovery,
/// monitors), while this directory answers per-key routing. For an
/// unsharded tenant the two agree on every key.
class RangeDirectory {
 public:
  /// Registers `tenant_id` with a single full-keyspace range owned by
  /// `server_id` (every tenant starts whole). AlreadyExists if present.
  Status RegisterTenant(uint64_t tenant_id, uint64_t server_id);
  /// Drops the tenant's whole range table (tenant deletion).
  Status RemoveTenant(uint64_t tenant_id);
  bool HasTenant(uint64_t tenant_id) const;

  /// The server owning `key`, or NotFound for unknown tenants.
  Result<uint64_t> OwnerOf(uint64_t tenant_id, uint64_t key) const;
  /// The range containing `key`, or NotFound for unknown tenants.
  Result<OwnedRange> RangeContaining(uint64_t tenant_id, uint64_t key) const;

  /// Splits the range containing `split_key` into [lo, split_key) and
  /// [split_key, hi), both keeping the owner. InvalidArgument when
  /// split_key is 0, kNoUpperBound, or already a range boundary.
  Status Split(uint64_t tenant_id, uint64_t split_key);

  /// Reassigns an *exact* existing range to `server_id` (the range
  /// handover's directory flip). NotFound unless `exact` matches a
  /// current range boundary-for-boundary — callers split first, then
  /// move; a sloppy move could silently orphan a sliver of keyspace.
  Status MoveRange(uint64_t tenant_id, const KeyRange& exact,
                   uint64_t server_id);

  /// Merges the range containing `key` with its successor when both
  /// have the same owner (post-migration tidying keeps the table
  /// small). FailedPrecondition when owners differ or no successor.
  Status MergeAt(uint64_t tenant_id, uint64_t key);

  /// The tenant's ranges in key order (empty for unknown tenants).
  std::vector<OwnedRange> RangesOf(uint64_t tenant_id) const;
  /// Distinct owning servers, ascending (empty for unknown tenants).
  std::vector<uint64_t> ServersOf(uint64_t tenant_id) const;
  /// True when the tenant's ranges live on more than one server.
  bool IsSharded(uint64_t tenant_id) const;
  size_t RangeCount(uint64_t tenant_id) const;

  /// Structural invariant: the tenant's ranges are contiguous,
  /// non-overlapping, and cover [0, kNoUpperBound) exactly. Internal
  /// when violated (a routing table with a hole loses queries).
  Status ValidateCoverage(uint64_t tenant_id) const;

  /// Monotone counter bumped by every mutation (tests assert churn).
  uint64_t version() const { return version_; }

 private:
  struct Entry {
    uint64_t hi = kNoUpperBound;
    uint64_t server = 0;
  };
  /// tenant -> (range lo -> entry); std::map iteration order is the key
  /// order, which keeps every listing deterministic.
  std::map<uint64_t, std::map<uint64_t, Entry>> tenants_;
  uint64_t version_ = 0;
};

}  // namespace slacker::range

#endif  // SLACKER_RANGE_RANGE_DIRECTORY_H_
