#include "src/range/range_directory.h"

#include <algorithm>
#include <string>

namespace slacker::range {
namespace {

std::string TenantTag(uint64_t tenant_id) {
  return "tenant " + std::to_string(tenant_id);
}

}  // namespace

Status RangeDirectory::RegisterTenant(uint64_t tenant_id, uint64_t server_id) {
  auto [it, inserted] =
      tenants_.try_emplace(tenant_id, std::map<uint64_t, Entry>{});
  if (!inserted) {
    return Status::AlreadyExists(TenantTag(tenant_id) +
                                 " already range-registered");
  }
  it->second[0] = Entry{kNoUpperBound, server_id};
  ++version_;
  return Status::Ok();
}

Status RangeDirectory::RemoveTenant(uint64_t tenant_id) {
  if (tenants_.erase(tenant_id) == 0) {
    return Status::NotFound(TenantTag(tenant_id) + " not range-registered");
  }
  ++version_;
  return Status::Ok();
}

bool RangeDirectory::HasTenant(uint64_t tenant_id) const {
  return tenants_.count(tenant_id) != 0;
}

Result<uint64_t> RangeDirectory::OwnerOf(uint64_t tenant_id,
                                         uint64_t key) const {
  Result<OwnedRange> owned = RangeContaining(tenant_id, key);
  if (!owned.ok()) return owned.status();
  return owned->server;
}

Result<OwnedRange> RangeDirectory::RangeContaining(uint64_t tenant_id,
                                                   uint64_t key) const {
  const auto tenant_it = tenants_.find(tenant_id);
  if (tenant_it == tenants_.end()) {
    return Status::NotFound(TenantTag(tenant_id) + " not range-registered");
  }
  const auto& ranges = tenant_it->second;
  // The greatest lo <= key; coverage guarantees it exists and contains
  // the key.
  auto it = ranges.upper_bound(key);
  --it;
  OwnedRange owned;
  owned.range = KeyRange{it->first, it->second.hi};
  owned.server = it->second.server;
  return owned;
}

Status RangeDirectory::Split(uint64_t tenant_id, uint64_t split_key) {
  const auto tenant_it = tenants_.find(tenant_id);
  if (tenant_it == tenants_.end()) {
    return Status::NotFound(TenantTag(tenant_id) + " not range-registered");
  }
  if (split_key == 0 || split_key == kNoUpperBound) {
    return Status::InvalidArgument("split key must be interior");
  }
  auto& ranges = tenant_it->second;
  if (ranges.count(split_key) != 0) {
    return Status::InvalidArgument("split key " + std::to_string(split_key) +
                                   " is already a range boundary");
  }
  auto it = ranges.upper_bound(split_key);
  --it;
  const uint64_t old_hi = it->second.hi;
  const uint64_t server = it->second.server;
  it->second.hi = split_key;
  ranges[split_key] = Entry{old_hi, server};
  ++version_;
  return Status::Ok();
}

Status RangeDirectory::MoveRange(uint64_t tenant_id, const KeyRange& exact,
                                 uint64_t server_id) {
  const auto tenant_it = tenants_.find(tenant_id);
  if (tenant_it == tenants_.end()) {
    return Status::NotFound(TenantTag(tenant_id) + " not range-registered");
  }
  auto& ranges = tenant_it->second;
  const auto it = ranges.find(exact.lo);
  if (it == ranges.end() || it->second.hi != exact.hi) {
    return Status::NotFound(TenantTag(tenant_id) + " has no range " +
                            exact.ToString());
  }
  it->second.server = server_id;
  ++version_;
  return Status::Ok();
}

Status RangeDirectory::MergeAt(uint64_t tenant_id, uint64_t key) {
  const auto tenant_it = tenants_.find(tenant_id);
  if (tenant_it == tenants_.end()) {
    return Status::NotFound(TenantTag(tenant_id) + " not range-registered");
  }
  auto& ranges = tenant_it->second;
  auto it = ranges.upper_bound(key);
  --it;
  if (it->second.hi == kNoUpperBound) {
    return Status::FailedPrecondition("topmost range has no successor");
  }
  const auto next = ranges.find(it->second.hi);
  if (next == ranges.end()) {
    return Status::Internal("range table hole after " +
                            std::to_string(it->second.hi));
  }
  if (next->second.server != it->second.server) {
    return Status::FailedPrecondition(
        "adjacent ranges owned by different servers");
  }
  it->second.hi = next->second.hi;
  ranges.erase(next);
  ++version_;
  return Status::Ok();
}

std::vector<OwnedRange> RangeDirectory::RangesOf(uint64_t tenant_id) const {
  std::vector<OwnedRange> out;
  const auto tenant_it = tenants_.find(tenant_id);
  if (tenant_it == tenants_.end()) return out;
  out.reserve(tenant_it->second.size());
  for (const auto& [lo, entry] : tenant_it->second) {
    OwnedRange owned;
    owned.range = KeyRange{lo, entry.hi};
    owned.server = entry.server;
    out.push_back(owned);
  }
  return out;
}

std::vector<uint64_t> RangeDirectory::ServersOf(uint64_t tenant_id) const {
  std::vector<uint64_t> out;
  const auto tenant_it = tenants_.find(tenant_id);
  if (tenant_it == tenants_.end()) return out;
  for (const auto& [lo, entry] : tenant_it->second) {
    out.push_back(entry.server);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool RangeDirectory::IsSharded(uint64_t tenant_id) const {
  const auto tenant_it = tenants_.find(tenant_id);
  if (tenant_it == tenants_.end()) return false;
  const auto& ranges = tenant_it->second;
  if (ranges.size() <= 1) return false;
  const uint64_t first = ranges.begin()->second.server;
  for (const auto& [lo, entry] : ranges) {
    if (entry.server != first) return true;
  }
  return false;
}

size_t RangeDirectory::RangeCount(uint64_t tenant_id) const {
  const auto tenant_it = tenants_.find(tenant_id);
  return tenant_it == tenants_.end() ? 0 : tenant_it->second.size();
}

Status RangeDirectory::ValidateCoverage(uint64_t tenant_id) const {
  const auto tenant_it = tenants_.find(tenant_id);
  if (tenant_it == tenants_.end()) {
    return Status::NotFound(TenantTag(tenant_id) + " not range-registered");
  }
  const auto& ranges = tenant_it->second;
  if (ranges.empty() || ranges.begin()->first != 0) {
    return Status::Internal(TenantTag(tenant_id) +
                            " range table does not start at 0");
  }
  uint64_t expected_lo = 0;
  for (const auto& [lo, entry] : ranges) {
    if (lo != expected_lo) {
      return Status::Internal(TenantTag(tenant_id) + " range table hole at " +
                              std::to_string(expected_lo));
    }
    if (entry.hi <= lo) {
      return Status::Internal(TenantTag(tenant_id) + " empty range at " +
                              std::to_string(lo));
    }
    expected_lo = entry.hi;
  }
  if (expected_lo != kNoUpperBound) {
    return Status::Internal(TenantTag(tenant_id) +
                            " range table truncated at " +
                            std::to_string(expected_lo));
  }
  return Status::Ok();
}

}  // namespace slacker::range
