#include "src/range/partitioner.h"

namespace slacker::range {

std::vector<uint64_t> PartitionSplitKeys(const storage::BTree& table,
                                         size_t target_ranges) {
  if (target_ranges <= 1) return {};
  std::vector<uint64_t> splits = table.SubtreeSplitKeys(target_ranges - 1);
  // A subtree separator of 0 would produce an empty leading range;
  // SubtreeSplitKeys never emits one for a non-empty tree (separators
  // exceed the smallest left-subtree key), but an all-zero-key
  // degenerate table must not crash the router.
  while (!splits.empty() && splits.front() == 0) {
    splits.erase(splits.begin());
  }
  return splits;
}

std::vector<KeyRange> PartitionKeySpace(const storage::BTree& table,
                                        size_t target_ranges) {
  const std::vector<uint64_t> splits =
      PartitionSplitKeys(table, target_ranges);
  std::vector<KeyRange> ranges;
  ranges.reserve(splits.size() + 1);
  uint64_t lo = 0;
  for (const uint64_t split : splits) {
    ranges.push_back(KeyRange{lo, split});
    lo = split;
  }
  ranges.push_back(KeyRange{lo, kNoUpperBound});
  return ranges;
}

}  // namespace slacker::range
