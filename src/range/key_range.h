#ifndef SLACKER_RANGE_KEY_RANGE_H_
#define SLACKER_RANGE_KEY_RANGE_H_

#include <cstdint>
#include <string>

namespace slacker::range {

/// Upper bound meaning "no bound": the range extends to the top of the
/// key space. Insert keys grow upward from the loaded record count, so
/// the topmost range of every tenant must stay unbounded or freshly
/// inserted rows would fall outside every range.
inline constexpr uint64_t kNoUpperBound = UINT64_MAX;

/// One migration unit: a contiguous, half-open slice [lo, hi) of a
/// tenant's key space (DESIGN.md §16). A tenant's ranges always
/// partition [0, kNoUpperBound) — contiguous, non-overlapping, covering
/// — which is what makes per-key ownership lookups total functions.
struct KeyRange {
  uint64_t lo = 0;
  uint64_t hi = kNoUpperBound;

  bool Contains(uint64_t key) const { return key >= lo && key < hi; }
  /// The whole key space (the granularity-1 compatibility range).
  bool IsFull() const { return lo == 0 && hi == kNoUpperBound; }
  bool operator==(const KeyRange& other) const = default;

  static KeyRange Full() { return KeyRange{0, kNoUpperBound}; }

  std::string ToString() const {
    return "[" + std::to_string(lo) + ", " +
           (hi == kNoUpperBound ? std::string("inf") : std::to_string(hi)) +
           ")";
  }
};

}  // namespace slacker::range

#endif  // SLACKER_RANGE_KEY_RANGE_H_
