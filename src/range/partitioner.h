#ifndef SLACKER_RANGE_PARTITIONER_H_
#define SLACKER_RANGE_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/range/key_range.h"
#include "src/storage/btree.h"

namespace slacker::range {

/// Cuts `table`'s key space into up to `target_ranges` contiguous
/// migration units aligned to B+-tree subtree boundaries (DESIGN.md
/// §16): the split keys come from the tree's own internal separators,
/// so each unit maps to whole subtrees and the hot-backup cursor scans
/// it without straddling reads. Always returns at least one range; the
/// last range is unbounded (new inserts land at the top of the key
/// space and must stay routable). Fewer ranges come back when the tree
/// is too small to cut `target_ranges` ways.
std::vector<KeyRange> PartitionKeySpace(const storage::BTree& table,
                                        size_t target_ranges);

/// The split keys PartitionKeySpace would cut at (exposed so callers
/// can feed a RangeDirectory::Split sequence directly).
std::vector<uint64_t> PartitionSplitKeys(const storage::BTree& table,
                                         size_t target_ranges);

}  // namespace slacker::range

#endif  // SLACKER_RANGE_PARTITIONER_H_
