file(REMOVE_RECURSE
  "CMakeFiles/adaptive_control_test.dir/adaptive_control_test.cc.o"
  "CMakeFiles/adaptive_control_test.dir/adaptive_control_test.cc.o.d"
  "adaptive_control_test"
  "adaptive_control_test.pdb"
  "adaptive_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
