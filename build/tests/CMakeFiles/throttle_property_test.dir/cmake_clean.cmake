file(REMOVE_RECURSE
  "CMakeFiles/throttle_property_test.dir/throttle_property_test.cc.o"
  "CMakeFiles/throttle_property_test.dir/throttle_property_test.cc.o.d"
  "throttle_property_test"
  "throttle_property_test.pdb"
  "throttle_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throttle_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
