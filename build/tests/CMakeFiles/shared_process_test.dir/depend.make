# Empty dependencies file for shared_process_test.
# This may be replaced when dependencies are built.
