file(REMOVE_RECURSE
  "CMakeFiles/shared_process_test.dir/shared_process_test.cc.o"
  "CMakeFiles/shared_process_test.dir/shared_process_test.cc.o.d"
  "shared_process_test"
  "shared_process_test.pdb"
  "shared_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
