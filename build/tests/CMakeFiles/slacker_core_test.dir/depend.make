# Empty dependencies file for slacker_core_test.
# This may be replaced when dependencies are built.
