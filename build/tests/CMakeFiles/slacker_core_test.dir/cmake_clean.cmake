file(REMOVE_RECURSE
  "CMakeFiles/slacker_core_test.dir/slacker_core_test.cc.o"
  "CMakeFiles/slacker_core_test.dir/slacker_core_test.cc.o.d"
  "slacker_core_test"
  "slacker_core_test.pdb"
  "slacker_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slacker_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
