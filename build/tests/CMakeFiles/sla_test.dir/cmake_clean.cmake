file(REMOVE_RECURSE
  "CMakeFiles/sla_test.dir/sla_test.cc.o"
  "CMakeFiles/sla_test.dir/sla_test.cc.o.d"
  "sla_test"
  "sla_test.pdb"
  "sla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
