# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hotspot_relief "/root/repo/build/examples/hotspot_relief")
set_tests_properties(example_hotspot_relief PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_consolidation "/root/repo/build/examples/consolidation")
set_tests_properties(example_consolidation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autopilot "/root/repo/build/examples/autopilot")
set_tests_properties(example_autopilot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
