# Empty compiler generated dependencies file for slacker_lab.
# This may be replaced when dependencies are built.
