file(REMOVE_RECURSE
  "CMakeFiles/slacker_lab.dir/slacker_lab.cpp.o"
  "CMakeFiles/slacker_lab.dir/slacker_lab.cpp.o.d"
  "slacker_lab"
  "slacker_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slacker_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
