# Empty compiler generated dependencies file for hotspot_relief.
# This may be replaced when dependencies are built.
