file(REMOVE_RECURSE
  "CMakeFiles/hotspot_relief.dir/hotspot_relief.cpp.o"
  "CMakeFiles/hotspot_relief.dir/hotspot_relief.cpp.o.d"
  "hotspot_relief"
  "hotspot_relief.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_relief.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
