file(REMOVE_RECURSE
  "CMakeFiles/autopilot.dir/autopilot.cpp.o"
  "CMakeFiles/autopilot.dir/autopilot.cpp.o.d"
  "autopilot"
  "autopilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
