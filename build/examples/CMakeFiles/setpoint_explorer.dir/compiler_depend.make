# Empty compiler generated dependencies file for setpoint_explorer.
# This may be replaced when dependencies are built.
