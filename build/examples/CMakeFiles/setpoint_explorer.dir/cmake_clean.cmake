file(REMOVE_RECURSE
  "CMakeFiles/setpoint_explorer.dir/setpoint_explorer.cpp.o"
  "CMakeFiles/setpoint_explorer.dir/setpoint_explorer.cpp.o.d"
  "setpoint_explorer"
  "setpoint_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setpoint_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
