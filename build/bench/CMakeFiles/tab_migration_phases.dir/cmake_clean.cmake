file(REMOVE_RECURSE
  "CMakeFiles/tab_migration_phases.dir/tab_migration_phases.cc.o"
  "CMakeFiles/tab_migration_phases.dir/tab_migration_phases.cc.o.d"
  "tab_migration_phases"
  "tab_migration_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_migration_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
