# Empty compiler generated dependencies file for tab_migration_phases.
# This may be replaced when dependencies are built.
