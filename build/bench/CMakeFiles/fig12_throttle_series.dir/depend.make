# Empty dependencies file for fig12_throttle_series.
# This may be replaced when dependencies are built.
