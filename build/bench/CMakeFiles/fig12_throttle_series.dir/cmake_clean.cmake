file(REMOVE_RECURSE
  "CMakeFiles/fig12_throttle_series.dir/fig12_throttle_series.cc.o"
  "CMakeFiles/fig12_throttle_series.dir/fig12_throttle_series.cc.o.d"
  "fig12_throttle_series"
  "fig12_throttle_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_throttle_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
