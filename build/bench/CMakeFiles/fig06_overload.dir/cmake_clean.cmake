file(REMOVE_RECURSE
  "CMakeFiles/fig06_overload.dir/fig06_overload.cc.o"
  "CMakeFiles/fig06_overload.dir/fig06_overload.cc.o.d"
  "fig06_overload"
  "fig06_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
