# Empty dependencies file for fig06_overload.
# This may be replaced when dependencies are built.
