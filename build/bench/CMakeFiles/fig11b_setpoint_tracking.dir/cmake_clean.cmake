file(REMOVE_RECURSE
  "CMakeFiles/fig11b_setpoint_tracking.dir/fig11b_setpoint_tracking.cc.o"
  "CMakeFiles/fig11b_setpoint_tracking.dir/fig11b_setpoint_tracking.cc.o.d"
  "fig11b_setpoint_tracking"
  "fig11b_setpoint_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_setpoint_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
