# Empty dependencies file for fig11b_setpoint_tracking.
# This may be replaced when dependencies are built.
