file(REMOVE_RECURSE
  "CMakeFiles/fig13a_dynamic_workload.dir/fig13a_dynamic_workload.cc.o"
  "CMakeFiles/fig13a_dynamic_workload.dir/fig13a_dynamic_workload.cc.o.d"
  "fig13a_dynamic_workload"
  "fig13a_dynamic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_dynamic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
