# Empty compiler generated dependencies file for fig13a_dynamic_workload.
# This may be replaced when dependencies are built.
