# Empty compiler generated dependencies file for ext_source_target.
# This may be replaced when dependencies are built.
