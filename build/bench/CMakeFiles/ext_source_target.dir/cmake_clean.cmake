file(REMOVE_RECURSE
  "CMakeFiles/ext_source_target.dir/ext_source_target.cc.o"
  "CMakeFiles/ext_source_target.dir/ext_source_target.cc.o.d"
  "ext_source_target"
  "ext_source_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_source_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
