file(REMOVE_RECURSE
  "CMakeFiles/fig07_slack_tradeoff.dir/fig07_slack_tradeoff.cc.o"
  "CMakeFiles/fig07_slack_tradeoff.dir/fig07_slack_tradeoff.cc.o.d"
  "fig07_slack_tradeoff"
  "fig07_slack_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_slack_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
