# Empty compiler generated dependencies file for fig07_slack_tradeoff.
# This may be replaced when dependencies are built.
