file(REMOVE_RECURSE
  "CMakeFiles/fig13b_multitenant.dir/fig13b_multitenant.cc.o"
  "CMakeFiles/fig13b_multitenant.dir/fig13b_multitenant.cc.o.d"
  "fig13b_multitenant"
  "fig13b_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
