file(REMOVE_RECURSE
  "CMakeFiles/abl_request_distribution.dir/abl_request_distribution.cc.o"
  "CMakeFiles/abl_request_distribution.dir/abl_request_distribution.cc.o.d"
  "abl_request_distribution"
  "abl_request_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_request_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
