# Empty compiler generated dependencies file for abl_request_distribution.
# This may be replaced when dependencies are built.
