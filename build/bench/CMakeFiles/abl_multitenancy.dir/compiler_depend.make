# Empty compiler generated dependencies file for abl_multitenancy.
# This may be replaced when dependencies are built.
