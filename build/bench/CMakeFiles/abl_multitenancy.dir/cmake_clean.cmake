file(REMOVE_RECURSE
  "CMakeFiles/abl_multitenancy.dir/abl_multitenancy.cc.o"
  "CMakeFiles/abl_multitenancy.dir/abl_multitenancy.cc.o.d"
  "abl_multitenancy"
  "abl_multitenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multitenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
