# Empty compiler generated dependencies file for fig05_fixed_throttle_series.
# This may be replaced when dependencies are built.
