file(REMOVE_RECURSE
  "CMakeFiles/fig05_fixed_throttle_series.dir/fig05_fixed_throttle_series.cc.o"
  "CMakeFiles/fig05_fixed_throttle_series.dir/fig05_fixed_throttle_series.cc.o.d"
  "fig05_fixed_throttle_series"
  "fig05_fixed_throttle_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_fixed_throttle_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
