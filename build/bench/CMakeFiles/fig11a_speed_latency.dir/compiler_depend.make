# Empty compiler generated dependencies file for fig11a_speed_latency.
# This may be replaced when dependencies are built.
