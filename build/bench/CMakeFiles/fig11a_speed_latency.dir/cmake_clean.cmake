file(REMOVE_RECURSE
  "CMakeFiles/fig11a_speed_latency.dir/fig11a_speed_latency.cc.o"
  "CMakeFiles/fig11a_speed_latency.dir/fig11a_speed_latency.cc.o.d"
  "fig11a_speed_latency"
  "fig11a_speed_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_speed_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
