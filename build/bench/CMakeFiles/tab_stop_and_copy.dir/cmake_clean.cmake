file(REMOVE_RECURSE
  "CMakeFiles/tab_stop_and_copy.dir/tab_stop_and_copy.cc.o"
  "CMakeFiles/tab_stop_and_copy.dir/tab_stop_and_copy.cc.o.d"
  "tab_stop_and_copy"
  "tab_stop_and_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_stop_and_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
