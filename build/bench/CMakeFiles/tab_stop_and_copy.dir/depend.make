# Empty dependencies file for tab_stop_and_copy.
# This may be replaced when dependencies are built.
