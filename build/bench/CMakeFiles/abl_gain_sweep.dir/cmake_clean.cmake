file(REMOVE_RECURSE
  "CMakeFiles/abl_gain_sweep.dir/abl_gain_sweep.cc.o"
  "CMakeFiles/abl_gain_sweep.dir/abl_gain_sweep.cc.o.d"
  "abl_gain_sweep"
  "abl_gain_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gain_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
