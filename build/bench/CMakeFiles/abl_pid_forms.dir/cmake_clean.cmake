file(REMOVE_RECURSE
  "CMakeFiles/abl_pid_forms.dir/abl_pid_forms.cc.o"
  "CMakeFiles/abl_pid_forms.dir/abl_pid_forms.cc.o.d"
  "abl_pid_forms"
  "abl_pid_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pid_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
