# Empty compiler generated dependencies file for abl_pid_forms.
# This may be replaced when dependencies are built.
