# Empty compiler generated dependencies file for slacker.
# This may be replaced when dependencies are built.
