file(REMOVE_RECURSE
  "libslacker.a"
)
