
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backup/delta_shipper.cc" "src/CMakeFiles/slacker.dir/backup/delta_shipper.cc.o" "gcc" "src/CMakeFiles/slacker.dir/backup/delta_shipper.cc.o.d"
  "/root/repo/src/backup/hot_backup.cc" "src/CMakeFiles/slacker.dir/backup/hot_backup.cc.o" "gcc" "src/CMakeFiles/slacker.dir/backup/hot_backup.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/slacker.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/slacker.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/checksum.cc" "src/CMakeFiles/slacker.dir/common/checksum.cc.o" "gcc" "src/CMakeFiles/slacker.dir/common/checksum.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/slacker.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/slacker.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/slacker.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/slacker.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/slacker.dir/common/random.cc.o" "gcc" "src/CMakeFiles/slacker.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/slacker.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/slacker.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/slacker.dir/common/status.cc.o" "gcc" "src/CMakeFiles/slacker.dir/common/status.cc.o.d"
  "/root/repo/src/control/adaptive_pid.cc" "src/CMakeFiles/slacker.dir/control/adaptive_pid.cc.o" "gcc" "src/CMakeFiles/slacker.dir/control/adaptive_pid.cc.o.d"
  "/root/repo/src/control/latency_monitor.cc" "src/CMakeFiles/slacker.dir/control/latency_monitor.cc.o" "gcc" "src/CMakeFiles/slacker.dir/control/latency_monitor.cc.o.d"
  "/root/repo/src/control/pid.cc" "src/CMakeFiles/slacker.dir/control/pid.cc.o" "gcc" "src/CMakeFiles/slacker.dir/control/pid.cc.o.d"
  "/root/repo/src/control/ziegler_nichols.cc" "src/CMakeFiles/slacker.dir/control/ziegler_nichols.cc.o" "gcc" "src/CMakeFiles/slacker.dir/control/ziegler_nichols.cc.o.d"
  "/root/repo/src/engine/checkpoint.cc" "src/CMakeFiles/slacker.dir/engine/checkpoint.cc.o" "gcc" "src/CMakeFiles/slacker.dir/engine/checkpoint.cc.o.d"
  "/root/repo/src/engine/tenant_db.cc" "src/CMakeFiles/slacker.dir/engine/tenant_db.cc.o" "gcc" "src/CMakeFiles/slacker.dir/engine/tenant_db.cc.o.d"
  "/root/repo/src/engine/transaction.cc" "src/CMakeFiles/slacker.dir/engine/transaction.cc.o" "gcc" "src/CMakeFiles/slacker.dir/engine/transaction.cc.o.d"
  "/root/repo/src/net/channel.cc" "src/CMakeFiles/slacker.dir/net/channel.cc.o" "gcc" "src/CMakeFiles/slacker.dir/net/channel.cc.o.d"
  "/root/repo/src/net/message.cc" "src/CMakeFiles/slacker.dir/net/message.cc.o" "gcc" "src/CMakeFiles/slacker.dir/net/message.cc.o.d"
  "/root/repo/src/net/wire.cc" "src/CMakeFiles/slacker.dir/net/wire.cc.o" "gcc" "src/CMakeFiles/slacker.dir/net/wire.cc.o.d"
  "/root/repo/src/resource/cpu.cc" "src/CMakeFiles/slacker.dir/resource/cpu.cc.o" "gcc" "src/CMakeFiles/slacker.dir/resource/cpu.cc.o.d"
  "/root/repo/src/resource/disk.cc" "src/CMakeFiles/slacker.dir/resource/disk.cc.o" "gcc" "src/CMakeFiles/slacker.dir/resource/disk.cc.o.d"
  "/root/repo/src/resource/network_link.cc" "src/CMakeFiles/slacker.dir/resource/network_link.cc.o" "gcc" "src/CMakeFiles/slacker.dir/resource/network_link.cc.o.d"
  "/root/repo/src/resource/token_bucket.cc" "src/CMakeFiles/slacker.dir/resource/token_bucket.cc.o" "gcc" "src/CMakeFiles/slacker.dir/resource/token_bucket.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/slacker.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/slacker.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/slacker.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/slacker.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sla/sla.cc" "src/CMakeFiles/slacker.dir/sla/sla.cc.o" "gcc" "src/CMakeFiles/slacker.dir/sla/sla.cc.o.d"
  "/root/repo/src/slacker/cluster.cc" "src/CMakeFiles/slacker.dir/slacker/cluster.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/cluster.cc.o.d"
  "/root/repo/src/slacker/metrics.cc" "src/CMakeFiles/slacker.dir/slacker/metrics.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/metrics.cc.o.d"
  "/root/repo/src/slacker/migration.cc" "src/CMakeFiles/slacker.dir/slacker/migration.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/migration.cc.o.d"
  "/root/repo/src/slacker/migration_controller.cc" "src/CMakeFiles/slacker.dir/slacker/migration_controller.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/migration_controller.cc.o.d"
  "/root/repo/src/slacker/options.cc" "src/CMakeFiles/slacker.dir/slacker/options.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/options.cc.o.d"
  "/root/repo/src/slacker/placement.cc" "src/CMakeFiles/slacker.dir/slacker/placement.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/placement.cc.o.d"
  "/root/repo/src/slacker/stop_and_copy.cc" "src/CMakeFiles/slacker.dir/slacker/stop_and_copy.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/stop_and_copy.cc.o.d"
  "/root/repo/src/slacker/tenant_directory.cc" "src/CMakeFiles/slacker.dir/slacker/tenant_directory.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/tenant_directory.cc.o.d"
  "/root/repo/src/slacker/tenant_manager.cc" "src/CMakeFiles/slacker.dir/slacker/tenant_manager.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/tenant_manager.cc.o.d"
  "/root/repo/src/slacker/throttle_policy.cc" "src/CMakeFiles/slacker.dir/slacker/throttle_policy.cc.o" "gcc" "src/CMakeFiles/slacker.dir/slacker/throttle_policy.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/slacker.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/slacker.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/slacker.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/slacker.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/data_directory.cc" "src/CMakeFiles/slacker.dir/storage/data_directory.cc.o" "gcc" "src/CMakeFiles/slacker.dir/storage/data_directory.cc.o.d"
  "/root/repo/src/storage/record.cc" "src/CMakeFiles/slacker.dir/storage/record.cc.o" "gcc" "src/CMakeFiles/slacker.dir/storage/record.cc.o.d"
  "/root/repo/src/storage/tablespace.cc" "src/CMakeFiles/slacker.dir/storage/tablespace.cc.o" "gcc" "src/CMakeFiles/slacker.dir/storage/tablespace.cc.o.d"
  "/root/repo/src/wal/binlog.cc" "src/CMakeFiles/slacker.dir/wal/binlog.cc.o" "gcc" "src/CMakeFiles/slacker.dir/wal/binlog.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/slacker.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/slacker.dir/wal/log_record.cc.o.d"
  "/root/repo/src/wal/recovery.cc" "src/CMakeFiles/slacker.dir/wal/recovery.cc.o" "gcc" "src/CMakeFiles/slacker.dir/wal/recovery.cc.o.d"
  "/root/repo/src/workload/client_pool.cc" "src/CMakeFiles/slacker.dir/workload/client_pool.cc.o" "gcc" "src/CMakeFiles/slacker.dir/workload/client_pool.cc.o.d"
  "/root/repo/src/workload/key_chooser.cc" "src/CMakeFiles/slacker.dir/workload/key_chooser.cc.o" "gcc" "src/CMakeFiles/slacker.dir/workload/key_chooser.cc.o.d"
  "/root/repo/src/workload/patterns.cc" "src/CMakeFiles/slacker.dir/workload/patterns.cc.o" "gcc" "src/CMakeFiles/slacker.dir/workload/patterns.cc.o.d"
  "/root/repo/src/workload/replay.cc" "src/CMakeFiles/slacker.dir/workload/replay.cc.o" "gcc" "src/CMakeFiles/slacker.dir/workload/replay.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/slacker.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/slacker.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/slacker.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/slacker.dir/workload/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
