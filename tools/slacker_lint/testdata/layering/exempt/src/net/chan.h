// Fixture: net -> resource is lateral but carried by an allow entry in
// layers.json, so the analyzer must stay quiet about it.
#ifndef FIXTURE_NET_CHAN_H_
#define FIXTURE_NET_CHAN_H_
#include "src/resource/link.h"
#endif
