// Fixture: a layer-2 header a layer-1 module wrongly reaches up for.
#ifndef FIXTURE_OBS_METRIC_H_
#define FIXTURE_OBS_METRIC_H_
#endif
