// Fixture: resource (layer 1) including obs (layer 2) is an upward
// violation the analyzer must flag.
#ifndef FIXTURE_RESOURCE_DISK_H_
#define FIXTURE_RESOURCE_DISK_H_
#include "src/obs/metric.h"
#endif
