// Fixture: a.h <-> b.h form a file-level include cycle.
#ifndef FIXTURE_NET_A_H_
#define FIXTURE_NET_A_H_
#include "src/net/b.h"
#endif
