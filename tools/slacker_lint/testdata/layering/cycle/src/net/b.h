#ifndef FIXTURE_NET_B_H_
#define FIXTURE_NET_B_H_
#include "src/net/a.h"
#endif
