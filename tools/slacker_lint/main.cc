// slacker_lint — determinism checker for the Slacker tree.
//
// Usage:
//   slacker_lint [--report findings.json] <file-or-dir>...
//
// Scans *.h / *.cc / *.cpp under the given paths for the determinism
// rules documented in lint.h. Exits 0 when the tree is clean, 1 when
// any finding survives NOLINT suppression, 2 on usage/IO errors.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tools/slacker_lint/lint.h"

int main(int argc, char** argv) {
  std::string report_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "slacker_lint: --report needs a path\n");
        return 2;
      }
      report_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: slacker_lint [--report findings.json] "
                   "<file-or-dir>...\n");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: slacker_lint [--report findings.json] "
                 "<file-or-dir>...\n");
    return 2;
  }

  slacker::lint::Linter linter;
  int scanned = 0;
  for (const std::string& path : paths) {
    const int added = slacker::lint::AddPath(&linter, path);
    if (added < 0) {
      std::fprintf(stderr, "slacker_lint: no such path: %s\n", path.c_str());
      return 2;
    }
    scanned += added;
  }

  const std::vector<slacker::lint::Finding> findings = linter.Run();
  std::fputs(slacker::lint::FindingsToText(findings).c_str(), stdout);

  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "slacker_lint: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
    out << slacker::lint::FindingsToJson(findings);
  }

  std::fprintf(stderr, "slacker_lint: %d file(s), %zu finding(s)\n", scanned,
               findings.size());
  return findings.empty() ? 0 : 1;
}
