// slacker_lint — determinism + layering checker for the Slacker tree.
//
// Usage:
//   slacker_lint [--layers layers.json] [--report findings.json]
//                [--dot modules.dot] <file-or-dir>...
//
// Scans *.h / *.cc / *.cpp under the given paths for the determinism
// rules documented in lint.h. With --layers, additionally checks every
// `#include "..."` edge against the module-layering contract (rules in
// layering.h) and, with --dot, writes the observed module graph as
// Graphviz. Exits 0 when the tree is clean, 1 when any finding
// survives NOLINT suppression, 2 on usage/IO errors.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/slacker_lint/layering.h"
#include "tools/slacker_lint/lint.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: slacker_lint [--layers layers.json] "
               "[--report findings.json] [--dot modules.dot] "
               "<file-or-dir>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  std::string layers_path;
  std::string dot_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" || arg == "--layers" || arg == "--dot") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "slacker_lint: %s needs a path\n", arg.c_str());
        return 2;
      }
      (arg == "--report" ? report_path
                         : arg == "--layers" ? layers_path : dot_path) =
          argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();
  if (!dot_path.empty() && layers_path.empty()) {
    std::fprintf(stderr, "slacker_lint: --dot requires --layers\n");
    return 2;
  }

  slacker::lint::LayerManifest manifest;
  if (!layers_path.empty()) {
    std::ifstream in(layers_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "slacker_lint: cannot read %s\n",
                   layers_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!slacker::lint::ParseLayerManifest(buf.str(), &manifest, &error)) {
      std::fprintf(stderr, "slacker_lint: %s: %s\n", layers_path.c_str(),
                   error.c_str());
      return 2;
    }
  }

  slacker::lint::Linter linter;
  slacker::lint::LayerAnalyzer layers;
  const bool layering = !layers_path.empty();
  int scanned = 0;
  for (const std::string& path : paths) {
    const int added = slacker::lint::AddPath(&linter, path,
                                             layering ? &layers : nullptr);
    if (added < 0) {
      std::fprintf(stderr, "slacker_lint: no such path: %s\n", path.c_str());
      return 2;
    }
    scanned += added;
  }

  std::vector<slacker::lint::Finding> findings;
  if (layering) {
    // The layering pass runs first so its exercised NOLINT suppressions
    // are known before the unused-NOLINT pass inside Run().
    findings = layers.Run(manifest);
    for (const slacker::lint::Finding& used : layers.used_suppressions()) {
      linter.NoteSuppressionUsed(used.path, used.line);
    }
  }
  const std::vector<slacker::lint::Finding> lint_findings = linter.Run();
  findings.insert(findings.end(), lint_findings.begin(), lint_findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const slacker::lint::Finding& a,
               const slacker::lint::Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  std::fputs(slacker::lint::FindingsToText(findings).c_str(), stdout);

  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "slacker_lint: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
    out << slacker::lint::FindingsToJson(findings);
  }
  if (!dot_path.empty()) {
    std::ofstream out(dot_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "slacker_lint: cannot write %s\n",
                   dot_path.c_str());
      return 2;
    }
    out << layers.ModuleGraphDot(manifest);
  }

  std::fprintf(stderr, "slacker_lint: %d file(s), %zu finding(s)\n", scanned,
               findings.size());
  return findings.empty() ? 0 : 1;
}
