#ifndef SLACKER_TOOLS_SLACKER_LINT_LINT_H_
#define SLACKER_TOOLS_SLACKER_LINT_LINT_H_

#include <string>
#include <vector>

namespace slacker::lint {

/// One determinism-rule violation at a specific source line.
struct Finding {
  std::string path;
  int line = 0;          // 1-based.
  std::string rule;      // e.g. "slacker-wallclock".
  std::string message;   // Human-readable explanation.

  bool operator==(const Finding& other) const {
    return path == other.path && line == other.line && rule == other.rule;
  }
};

/// Rule identifiers (also the names accepted inside NOLINT(...)):
///
///   slacker-wallclock       wall-clock reads (system_clock, time(),
///                           gettimeofday, ...) — the simulator clock is
///                           the only time source allowed in sim code.
///   slacker-raw-rand        rand()/srand()/std::random_device outside
///                           src/common/random — all randomness must flow
///                           from an explicitly seeded slacker::Rng.
///   slacker-unordered-iter  iteration over a std::unordered_{map,set}
///                           member inside src/obs/ — the exporters are
///                           byte-stable, and unordered iteration order
///                           is ABI/hash-seed dependent.
///   slacker-float-eq        ==/!= against a floating-point literal —
///                           exact float equality is usually a latent
///                           tolerance bug (annotate deliberate
///                           sweep-point comparisons with NOLINT).
///   slacker-dropped-status  a call to a Status/Result-returning function
///                           in statement position — the error is
///                           silently dropped (mirrors [[nodiscard]] for
///                           builds that swallow the warning).
///   slacker-wire-decode     reinterpret_cast or raw memcpy outside
///                           src/codec, src/net and src/common — wire
///                           bytes must be decoded through the
///                           CRC-checked frame layer, not reinterpreted
///                           in place.
///
/// Suppression: a line containing `// NOLINT` suppresses every rule on
/// that line; `// NOLINT(rule-a, rule-b)` suppresses only those rules.

/// Two-pass linter. AddFile() all translation units first (pass 1 builds
/// the cross-file symbol table for slacker-dropped-status), then Run().
class Linter {
 public:
  /// Registers a file's content for linting. `path` is used verbatim in
  /// findings and for path-scoped rules (src/common/random exemption,
  /// src/obs/ scoping).
  void AddFile(const std::string& path, const std::string& content);

  /// Lints every added file; findings are ordered by (path, line).
  std::vector<Finding> Run();

 private:
  struct FileEntry {
    std::string path;
    std::vector<std::string> raw;     // Original lines (NOLINT detection).
    std::vector<std::string> masked;  // Comments/strings blanked out.
  };

  void CollectStatusNames(const FileEntry& file);
  void LintFile(const FileEntry& file, std::vector<Finding>* out) const;

  std::vector<FileEntry> files_;
  // Function names declared (somewhere in the scanned set) with a
  // Status/Result return type...
  std::vector<std::string> status_names_;
  // ...and names also declared with a different return type; such
  // ambiguous names are dropped from the statement-position rule.
  std::vector<std::string> other_names_;
};

/// Reads `path` (recursively, for directories) and adds every *.h,
/// *.cc, *.cpp file to `linter`. Returns the number of files added; -1
/// if `path` does not exist.
int AddPath(Linter* linter, const std::string& path);

/// Findings as a deterministic machine-readable JSON array.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// "path:line: [rule] message" — one per line.
std::string FindingsToText(const std::vector<Finding>& findings);

}  // namespace slacker::lint

#endif  // SLACKER_TOOLS_SLACKER_LINT_LINT_H_
