#ifndef SLACKER_TOOLS_SLACKER_LINT_LINT_H_
#define SLACKER_TOOLS_SLACKER_LINT_LINT_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace slacker::lint {

/// One rule violation at a specific source line.
struct Finding {
  std::string path;
  int line = 0;          // 1-based.
  std::string rule;      // e.g. "slacker-wallclock".
  std::string message;   // Human-readable explanation.

  bool operator==(const Finding& other) const {
    return path == other.path && line == other.line && rule == other.rule;
  }
};

/// Rule identifiers (also the names accepted inside NOLINT(...)):
///
///   slacker-wallclock       wall-clock reads (system_clock, time(),
///                           gettimeofday, ...) — the simulator clock is
///                           the only time source allowed in sim code.
///   slacker-raw-rand        rand()/srand()/std::random_device outside
///                           src/common/random — all randomness must flow
///                           from an explicitly seeded slacker::Rng.
///   slacker-unordered-iter  iteration over a std::unordered_{map,set}
///                           member inside src/obs/ — the exporters are
///                           byte-stable, and unordered iteration order
///                           is ABI/hash-seed dependent.
///   slacker-float-eq        ==/!= against a floating-point literal —
///                           exact float equality is usually a latent
///                           tolerance bug (annotate deliberate
///                           sweep-point comparisons with NOLINT).
///   slacker-dropped-status  a Status/Result that is silently dropped:
///                           either a call to a Status/Result-returning
///                           function in statement position, or a local
///                           `Status s = ...` that is never branched-on,
///                           returned, moved, passed on, or
///                           (void)-annotated before its scope exits
///                           (intra-function flow tracking).
///   slacker-wire-decode     reinterpret_cast or raw memcpy outside
///                           src/codec, src/net and src/common — wire
///                           bytes must be decoded through the
///                           CRC-checked frame layer, not reinterpreted
///                           in place.
///   slacker-default-switch  a `default:` arm in a switch over a project
///                           enum — it would silently swallow a new
///                           enumerator; enumerate the cases instead so
///                           -Wswitch (CI: -Werror) flags additions.
///   slacker-unused-nolint   a NOLINT marker that no longer suppresses
///                           any finding — stale markers hide future
///                           regressions and must be deleted.
///
/// The layering rules (slacker-layering, slacker-unknown-module,
/// slacker-include-cycle, slacker-module-cycle) are documented in
/// layering.h.
///
/// Suppression: a line containing `// NOLINT` suppresses every rule on
/// that line; `// NOLINT(rule-a, rule-b)` suppresses only those rules.

/// Replaces the bodies of string literals, char literals and comments
/// with spaces (newlines preserved) so rule regexes never match inside
/// quoted text. Raw strings are handled with the default `R"("`
/// delimiter only — enough for this tree.
std::string MaskCommentsAndStrings(const std::string& in);

/// True if `raw_line` carries a NOLINT marker that suppresses `rule`:
/// a bare NOLINT suppresses everything; NOLINT(a, b) suppresses only
/// the named rules.
bool IsSuppressed(const std::string& raw_line, const std::string& rule);

/// Two-pass linter. AddFile() all translation units first (pass 1
/// builds the cross-file symbol tables: Status/Result-returning
/// function names for slacker-dropped-status, project enum names for
/// slacker-default-switch), then Run().
class Linter {
 public:
  /// Registers a file's content for linting. `path` is used verbatim in
  /// findings and for path-scoped rules (src/common/random exemption,
  /// src/obs/ scoping).
  void AddFile(const std::string& path, const std::string& content);

  /// Records a suppression exercised by another pass at (path, line)
  /// — the layering analyzer shares the NOLINT escape hatch — so
  /// slacker-unused-nolint does not flag that marker. Call before
  /// Run().
  void NoteSuppressionUsed(const std::string& path, int line);

  /// Lints every added file; findings are ordered by (path, line).
  std::vector<Finding> Run();

 private:
  struct FileEntry {
    std::string path;
    std::vector<std::string> raw;     // Original lines (NOLINT detection).
    std::vector<std::string> masked;  // Comments/strings blanked out.
  };

  void CollectDeclarations(const FileEntry& file);
  void LintFile(const FileEntry& file, std::vector<Finding>* out);
  /// Intra-function passes: dropped Status/Result locals and
  /// default-swallowed enum switches (scope-tracking scan).
  void LintFlow(const FileEntry& file, std::vector<Finding>* out);
  /// Flags NOLINT markers (bare, or naming only slacker-* rules) that
  /// suppressed nothing this run. Runs after every other pass.
  void LintUnusedNolint(const FileEntry& file,
                        std::vector<Finding>* out) const;
  /// Emits unless the raw line suppresses `rule`; a suppressed finding
  /// is recorded for the unused-NOLINT pass instead.
  void Emit(const FileEntry& file, int line_index, const char* rule,
            std::string message, std::vector<Finding>* out);

  std::vector<FileEntry> files_;
  // Function names declared (somewhere in the scanned set) with a
  // Status/Result return type...
  std::vector<std::string> status_names_;
  // ...and names also declared with a different return type; such
  // ambiguous names are dropped from the statement-position rule.
  std::vector<std::string> other_names_;
  // Named enums declared anywhere in the scanned set ("project enums").
  std::vector<std::string> enum_names_;
  // (path, 1-based line) pairs where a NOLINT marker suppressed a
  // finding during this run (or an external pass, via
  // NoteSuppressionUsed).
  std::set<std::pair<std::string, int>> suppressions_used_;
};

/// Reads `path` (recursively, for directories) and adds every *.h,
/// *.cc, *.cpp file to `linter` and, when non-null, to `also` (the
/// layering analyzer — any type with a compatible AddFile). Returns
/// the number of files added; -1 if `path` does not exist.
class LayerAnalyzer;
int AddPath(Linter* linter, const std::string& path,
            LayerAnalyzer* also = nullptr);

/// Findings as a deterministic machine-readable JSON array.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// "path:line: [rule] message" — one per line.
std::string FindingsToText(const std::vector<Finding>& findings);

}  // namespace slacker::lint

#endif  // SLACKER_TOOLS_SLACKER_LINT_LINT_H_
