#ifndef SLACKER_TOOLS_SLACKER_LINT_LAYERING_H_
#define SLACKER_TOOLS_SLACKER_LINT_LAYERING_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/slacker_lint/lint.h"

namespace slacker::lint {

/// The checked-in module-layering contract (tools/slacker_lint/
/// layers.json). A module may include itself and any module in a
/// strictly lower layer; everything else is a violation unless the
/// edge appears in `allow` with a rationale.
struct LayerManifest {
  struct AllowedEdge {
    std::string from;
    std::string to;
    std::string why;
  };

  /// layers[0] is the bottom of the DAG.
  std::vector<std::vector<std::string>> layers;
  std::vector<AllowedEdge> allow;

  /// Layer index of `module`, or -1 when the module is not declared.
  int LayerOf(const std::string& module) const;
  /// True if `from` -> `to` is an explicitly allowed exception.
  bool IsAllowed(const std::string& from, const std::string& to) const;
};

/// Parses the layers.json subset (objects, arrays, strings; "//" keys
/// are comments). Returns false and fills `*error` on malformed input
/// or a manifest that fails validation (duplicate module, empty layer,
/// allow-edge naming an undeclared module).
bool ParseLayerManifest(const std::string& json, LayerManifest* manifest,
                        std::string* error);

/// Repo-relative form of `path`: the suffix starting at the last
/// path segment equal to a project root (src, bench, tests, tools,
/// examples). Empty when no root segment is present.
std::string NormalizePath(const std::string& path);

/// Module owning `path`: the directory under src/ ("src/net/wire.h" ->
/// "net") or the root itself ("bench/harness.h" -> "bench"). Empty for
/// external includes like "gtest/gtest.h".
std::string ModuleOf(const std::string& path);

/// Rules emitted by the layering pass:
///
///   slacker-layering        an `#include "..."` edge that goes upward
///                           or sideways in the layer DAG and is not in
///                           the manifest's allow list.
///   slacker-unknown-module  a scanned file (or include target under a
///                           project root) whose module is not declared
///                           in the manifest.
///   slacker-include-cycle   a strongly connected component in the
///                           file-level include graph.
///   slacker-module-cycle    a cycle in the module graph (possible even
///                           without a file-level cycle; it means the
///                           allow list, not just the code, is broken).
///
/// Include-line findings honour the same NOLINT(...) escape hatch as
/// the determinism rules; structural exemptions belong in layers.json.
class LayerAnalyzer {
 public:
  /// Registers a file's content. `path` may be absolute; findings use
  /// it verbatim while graph node identity uses NormalizePath().
  void AddFile(const std::string& path, const std::string& content);

  /// Runs the layering + cycle passes; findings ordered by
  /// (path, line, rule). Also records which NOLINT suppressions were
  /// exercised (see used_suppressions()).
  std::vector<Finding> Run(const LayerManifest& manifest);

  /// Graphviz DOT of the module graph observed by the last Run():
  /// layers as ranked clusters, conforming edges solid, allowed
  /// exceptions dashed, violations bold red. Byte-deterministic.
  std::string ModuleGraphDot(const LayerManifest& manifest) const;

  /// (path, line, rule) triples whose findings were NOLINT-suppressed
  /// during the last Run(); feeds the unused-NOLINT check.
  const std::vector<Finding>& used_suppressions() const {
    return used_suppressions_;
  }

 private:
  struct IncludeEdge {
    int line = 0;             // 1-based.
    std::string target;       // Include string, verbatim.
    std::string raw_line;     // For NOLINT detection.
  };
  struct FileNode {
    std::string path;         // As given (findings).
    std::string norm;         // NormalizePath(path) (graph identity).
    std::string module;
    std::vector<IncludeEdge> includes;
  };

  std::vector<FileNode> files_;
  /// Module edge -> one witness include (file path, line, target) for
  /// deterministic reporting; populated by Run().
  std::map<std::pair<std::string, std::string>,
           std::tuple<std::string, int, std::string>>
      module_edges_;
  std::vector<Finding> used_suppressions_;
};

}  // namespace slacker::lint

#endif  // SLACKER_TOOLS_SLACKER_LINT_LAYERING_H_
