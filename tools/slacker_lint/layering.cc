#include "tools/slacker_lint/layering.h"

#include <algorithm>
#include <regex>
#include <sstream>
#include <tuple>

namespace slacker::lint {
namespace {

const char* const kProjectRoots[] = {"src", "bench", "tests", "tools",
                                     "examples"};

bool IsProjectRoot(const std::string& segment) {
  for (const char* root : kProjectRoots) {
    if (segment == root) return true;
  }
  return false;
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string::size_type start = 0;
  while (start < path.size()) {
    const auto slash = path.find('/', start);
    if (slash == std::string::npos) {
      parts.push_back(path.substr(start));
      break;
    }
    if (slash > start) parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  return parts;
}

// --- Minimal JSON reader (objects/arrays/strings + skipped scalars) ---

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Match(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          default:
            *out += esc;  // \" \\ \/ and anything exotic verbatim.
        }
      } else {
        *out += c;
      }
    }
    return false;  // Unterminated.
  }

  /// Skips one value of any JSON type (for unknown keys).
  bool SkipValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      if (Match(close)) return true;
      while (true) {
        if (close == '}') {
          std::string key;
          if (!ParseString(&key) || !Match(':')) return false;
        }
        if (!SkipValue()) return false;
        if (Match(close)) return true;
        if (!Match(',')) return false;
      }
    }
    // Bare scalar (number / true / false / null).
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']' && text_[pos_] != ' ' && text_[pos_] != '\n' &&
           text_[pos_] != '\t' && text_[pos_] != '\r') {
      ++pos_;
    }
    return true;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

bool ParseStringArray(JsonCursor* cur, std::vector<std::string>* out,
                      std::string* error) {
  if (!cur->Match('[')) {
    *error = "expected '['";
    return false;
  }
  if (cur->Match(']')) return true;
  while (true) {
    std::string s;
    if (!cur->ParseString(&s)) {
      *error = "expected string in array";
      return false;
    }
    out->push_back(std::move(s));
    if (cur->Match(']')) return true;
    if (!cur->Match(',')) {
      *error = "expected ',' or ']' in array";
      return false;
    }
  }
}

// --- Cycle detection (iterative Tarjan SCC) ----------------------------

/// Strongly connected components of `graph` (adjacency by node index),
/// each returned sorted; only components with >1 node or a self-loop
/// are reported. Deterministic for a fixed graph.
std::vector<std::vector<int>> CyclicComponents(
    const std::vector<std::vector<int>>& graph) {
  const int n = static_cast<int>(graph.size());
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  std::vector<std::vector<int>> cyclic;
  int next_index = 0;

  struct Frame {
    int node;
    size_t edge = 0;
  };
  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> call_stack{{root}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const int v = frame.node;
      if (frame.edge < graph[v].size()) {
        const int w = graph[v][frame.edge++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          std::vector<int> component;
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          bool self_loop = false;
          for (const int w : graph[v]) self_loop |= w == v;
          if (component.size() > 1 || self_loop) {
            std::sort(component.begin(), component.end());
            cyclic.push_back(std::move(component));
          }
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const int parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  std::sort(cyclic.begin(), cyclic.end());
  return cyclic;
}

const std::regex& IncludeRe() {
  static const std::regex re(R"re(^\s*#\s*include\s*"([^"]+)")re");
  return re;
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

int LayerManifest::LayerOf(const std::string& module) const {
  for (size_t i = 0; i < layers.size(); ++i) {
    for (const std::string& m : layers[i]) {
      if (m == module) return static_cast<int>(i);
    }
  }
  return -1;
}

bool LayerManifest::IsAllowed(const std::string& from,
                              const std::string& to) const {
  for (const AllowedEdge& edge : allow) {
    if (edge.from == from && edge.to == to) return true;
  }
  return false;
}

bool ParseLayerManifest(const std::string& json, LayerManifest* manifest,
                        std::string* error) {
  manifest->layers.clear();
  manifest->allow.clear();
  JsonCursor cur(json);
  if (!cur.Match('{')) {
    *error = "manifest must be a JSON object";
    return false;
  }
  if (!cur.Match('}')) {
    while (true) {
      std::string key;
      if (!cur.ParseString(&key) || !cur.Match(':')) {
        *error = "malformed manifest key";
        return false;
      }
      if (key == "layers") {
        if (!cur.Match('[')) {
          *error = "'layers' must be an array of arrays";
          return false;
        }
        if (!cur.Match(']')) {
          while (true) {
            std::vector<std::string> layer;
            if (!ParseStringArray(&cur, &layer, error)) return false;
            manifest->layers.push_back(std::move(layer));
            if (cur.Match(']')) break;
            if (!cur.Match(',')) {
              *error = "expected ',' or ']' in 'layers'";
              return false;
            }
          }
        }
      } else if (key == "allow") {
        if (!cur.Match('[')) {
          *error = "'allow' must be an array of objects";
          return false;
        }
        if (!cur.Match(']')) {
          while (true) {
            if (!cur.Match('{')) {
              *error = "'allow' entries must be objects";
              return false;
            }
            LayerManifest::AllowedEdge edge;
            if (!cur.Match('}')) {
              while (true) {
                std::string field, value;
                if (!cur.ParseString(&field) || !cur.Match(':') ||
                    !cur.ParseString(&value)) {
                  *error = "malformed 'allow' entry";
                  return false;
                }
                if (field == "from") edge.from = value;
                if (field == "to") edge.to = value;
                if (field == "why") edge.why = value;
                if (cur.Match('}')) break;
                if (!cur.Match(',')) {
                  *error = "expected ',' or '}' in 'allow' entry";
                  return false;
                }
              }
            }
            manifest->allow.push_back(std::move(edge));
            if (cur.Match(']')) break;
            if (!cur.Match(',')) {
              *error = "expected ',' or ']' in 'allow'";
              return false;
            }
          }
        }
      } else {
        if (!cur.SkipValue()) {
          *error = "malformed value for key '" + key + "'";
          return false;
        }
      }
      if (cur.Match('}')) break;
      if (!cur.Match(',')) {
        *error = "expected ',' or '}' at top level";
        return false;
      }
    }
  }

  // Validation: every module in exactly one layer; allow edges name
  // declared modules, are not self-edges, and are not already legal.
  if (manifest->layers.empty()) {
    *error = "manifest declares no layers";
    return false;
  }
  std::set<std::string> seen;
  for (const auto& layer : manifest->layers) {
    if (layer.empty()) {
      *error = "manifest declares an empty layer";
      return false;
    }
    for (const std::string& m : layer) {
      if (!seen.insert(m).second) {
        *error = "module '" + m + "' appears in more than one layer";
        return false;
      }
    }
  }
  for (const auto& edge : manifest->allow) {
    if (edge.from == edge.to) {
      *error = "allow edge '" + edge.from + "' -> itself is meaningless";
      return false;
    }
    const int from = manifest->LayerOf(edge.from);
    const int to = manifest->LayerOf(edge.to);
    if (from < 0 || to < 0) {
      *error = "allow edge '" + edge.from + "' -> '" + edge.to +
               "' names an undeclared module";
      return false;
    }
    if (to < from) {
      *error = "allow edge '" + edge.from + "' -> '" + edge.to +
               "' is already legal (strictly downward); remove it";
      return false;
    }
    if (edge.why.empty()) {
      *error = "allow edge '" + edge.from + "' -> '" + edge.to +
               "' needs a 'why' rationale";
      return false;
    }
  }
  return true;
}

std::string NormalizePath(const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  for (size_t i = parts.size(); i-- > 0;) {
    if (IsProjectRoot(parts[i])) {
      std::string out;
      for (size_t j = i; j < parts.size(); ++j) {
        if (j > i) out += '/';
        out += parts[j];
      }
      return out;
    }
  }
  return "";
}

std::string ModuleOf(const std::string& path) {
  const std::string norm = NormalizePath(path);
  if (norm.empty()) return "";
  const std::vector<std::string> parts = SplitPath(norm);
  if (parts[0] == "src") {
    return parts.size() > 2 ? parts[1] : "";  // src/<module>/file.h
  }
  return parts[0];  // bench/tests/tools/examples own their trees.
}

void LayerAnalyzer::AddFile(const std::string& path,
                            const std::string& content) {
  FileNode node;
  node.path = path;
  node.norm = NormalizePath(path);
  node.module = ModuleOf(path);

  // Directive detection runs on masked text (so a commented-out
  // include is ignored) while the path itself is read from the raw
  // line, where the string body survives.
  const std::string masked = MaskCommentsAndStrings(content);
  std::istringstream raw_stream(content);
  std::istringstream masked_stream(masked);
  std::string raw_line, masked_line;
  int line_number = 0;
  std::smatch m;
  while (std::getline(raw_stream, raw_line)) {
    std::getline(masked_stream, masked_line);
    ++line_number;
    if (!std::regex_search(masked_line, m, IncludeRe())) continue;
    if (!std::regex_search(raw_line, m, IncludeRe())) continue;
    IncludeEdge edge;
    edge.line = line_number;
    edge.target = m[1].str();
    edge.raw_line = raw_line;
    node.includes.push_back(std::move(edge));
  }
  files_.push_back(std::move(node));
}

std::vector<Finding> LayerAnalyzer::Run(const LayerManifest& manifest) {
  module_edges_.clear();
  used_suppressions_.clear();
  std::vector<Finding> findings;

  auto emit = [&](const std::string& path, int line, const char* rule,
                  std::string message, const std::string& raw_line) {
    Finding f;
    f.path = path;
    f.line = line;
    f.rule = rule;
    f.message = std::move(message);
    if (!raw_line.empty() && IsSuppressed(raw_line, rule)) {
      used_suppressions_.push_back(std::move(f));
      return;
    }
    findings.push_back(std::move(f));
  };

  // Pass 1: per-include layering checks + module edge collection.
  for (const FileNode& file : files_) {
    if (file.module.empty()) continue;  // Not under a project root.
    const int from_layer = manifest.LayerOf(file.module);
    if (from_layer < 0) {
      emit(file.path, 1, "slacker-unknown-module",
           "module '" + file.module +
               "' is not declared in the layer manifest; add it to "
               "exactly one layer in tools/slacker_lint/layers.json",
           "");
      continue;
    }
    for (const IncludeEdge& inc : file.includes) {
      const std::string to_module = ModuleOf(inc.target);
      if (to_module.empty()) continue;  // External (<...>-style or gtest).
      if (to_module == file.module) continue;
      const int to_layer = manifest.LayerOf(to_module);
      if (to_layer < 0) {
        emit(file.path, inc.line, "slacker-unknown-module",
             "include of '" + inc.target + "': module '" + to_module +
                 "' is not declared in the layer manifest",
             inc.raw_line);
        continue;
      }
      module_edges_.emplace(
          std::make_pair(file.module, to_module),
          std::make_tuple(file.path, inc.line, inc.target));
      if (to_layer < from_layer) continue;  // Strictly downward: legal.
      if (manifest.IsAllowed(file.module, to_module)) continue;
      const bool lateral = to_layer == from_layer;
      emit(file.path, inc.line, "slacker-layering",
           "include of '" + inc.target + "' (module '" + to_module +
               "', layer " + std::to_string(to_layer) + ") from module '" +
               file.module + "' (layer " + std::to_string(from_layer) +
               ") is " + (lateral ? "lateral" : "upward") +
               "; move the shared type down, forward-declare, or add a "
               "justified edge to layers.json",
           inc.raw_line);
    }
  }

  // Pass 2: file-level include cycles (SCC over the include graph).
  std::map<std::string, int> node_of;
  for (const FileNode& file : files_) {
    if (!file.norm.empty() && node_of.find(file.norm) == node_of.end()) {
      const int id = static_cast<int>(node_of.size());
      node_of[file.norm] = id;
    }
  }
  std::vector<std::vector<int>> graph(node_of.size());
  std::vector<const FileNode*> node_file(node_of.size(), nullptr);
  for (const FileNode& file : files_) {
    if (file.norm.empty()) continue;
    const int from = node_of[file.norm];
    if (node_file[from] == nullptr) node_file[from] = &file;
    for (const IncludeEdge& inc : file.includes) {
      const auto it = node_of.find(NormalizePath(inc.target));
      if (it != node_of.end()) graph[from].push_back(it->second);
    }
  }
  for (auto& adjacency : graph) {
    std::sort(adjacency.begin(), adjacency.end());
    adjacency.erase(std::unique(adjacency.begin(), adjacency.end()),
                    adjacency.end());
  }
  std::vector<std::string> node_name(node_of.size());
  for (const auto& [name, id] : node_of) node_name[id] = name;
  for (const std::vector<int>& component : CyclicComponents(graph)) {
    // Anchor the finding at the lexicographically smallest member, on
    // the first include that stays inside the component.
    std::vector<std::string> members;
    for (const int id : component) members.push_back(node_name[id]);
    std::sort(members.begin(), members.end());
    const FileNode* anchor = node_file[node_of[members[0]]];
    int line = 1;
    std::string raw_line;
    std::set<std::string> member_set(members.begin(), members.end());
    for (const IncludeEdge& inc : anchor->includes) {
      if (member_set.count(NormalizePath(inc.target)) != 0) {
        line = inc.line;
        raw_line = inc.raw_line;
        break;
      }
    }
    std::string chain;
    for (const std::string& member : members) {
      if (!chain.empty()) chain += " -> ";
      chain += member;
    }
    emit(anchor->path, line, "slacker-include-cycle",
         "include cycle among " + std::to_string(members.size()) +
             " file(s): " + chain +
             "; break it with a forward declaration or a split header",
         raw_line);
  }

  // Pass 3: module-level cycles over the observed edges (allowed edges
  // included — a cycle here means the manifest itself is broken).
  std::map<std::string, int> mod_of;
  for (const auto& [edge, witness] : module_edges_) {
    (void)witness;
    if (mod_of.find(edge.first) == mod_of.end()) {
      const int id = static_cast<int>(mod_of.size());
      mod_of[edge.first] = id;
    }
    if (mod_of.find(edge.second) == mod_of.end()) {
      const int id = static_cast<int>(mod_of.size());
      mod_of[edge.second] = id;
    }
  }
  std::vector<std::vector<int>> mod_graph(mod_of.size());
  for (const auto& [edge, witness] : module_edges_) {
    (void)witness;
    mod_graph[mod_of[edge.first]].push_back(mod_of[edge.second]);
  }
  for (auto& adjacency : mod_graph) {
    std::sort(adjacency.begin(), adjacency.end());
  }
  std::vector<std::string> mod_name(mod_of.size());
  for (const auto& [name, id] : mod_of) mod_name[id] = name;
  for (const std::vector<int>& component : CyclicComponents(mod_graph)) {
    std::vector<std::string> members;
    for (const int id : component) members.push_back(mod_name[id]);
    std::sort(members.begin(), members.end());
    std::string chain;
    for (const std::string& member : members) {
      if (!chain.empty()) chain += " <-> ";
      chain += member;
    }
    // Witness: the first observed edge inside the component.
    std::string path = "<module-graph>";
    int line = 0;
    for (const auto& [edge, witness] : module_edges_) {
      if (std::find(members.begin(), members.end(), edge.first) !=
              members.end() &&
          std::find(members.begin(), members.end(), edge.second) !=
              members.end()) {
        path = std::get<0>(witness);
        line = std::get<1>(witness);
        break;
      }
    }
    emit(path, line, "slacker-module-cycle",
         "module dependency cycle: " + chain +
             "; the layer DAG admits no cycle regardless of allow "
             "entries — invert one dependency (interface in the lower "
             "module)",
         "");
  }

  SortFindings(&findings);
  SortFindings(&used_suppressions_);
  return findings;
}

std::string LayerAnalyzer::ModuleGraphDot(
    const LayerManifest& manifest) const {
  std::ostringstream out;
  out << "digraph slacker_modules {\n";
  out << "  rankdir=BT;\n";
  out << "  node [shape=box, fontname=\"Helvetica\"];\n";

  // Declared modules grouped by layer; undeclared-but-observed modules
  // float outside the clusters.
  std::set<std::string> declared;
  for (size_t i = 0; i < manifest.layers.size(); ++i) {
    out << "  subgraph cluster_layer" << i << " {\n";
    out << "    label=\"layer " << i << "\";\n";
    out << "    style=dashed;\n";
    std::vector<std::string> layer = manifest.layers[i];
    std::sort(layer.begin(), layer.end());
    for (const std::string& m : layer) {
      out << "    \"" << m << "\";\n";
      declared.insert(m);
    }
    out << "  }\n";
  }
  std::set<std::string> stray;
  for (const auto& [edge, witness] : module_edges_) {
    (void)witness;
    if (declared.count(edge.first) == 0) stray.insert(edge.first);
    if (declared.count(edge.second) == 0) stray.insert(edge.second);
  }
  for (const std::string& m : stray) {
    out << "  \"" << m << "\" [color=\"#cc3311\"];\n";
  }

  for (const auto& [edge, witness] : module_edges_) {
    (void)witness;
    const int from = manifest.LayerOf(edge.first);
    const int to = manifest.LayerOf(edge.second);
    out << "  \"" << edge.first << "\" -> \"" << edge.second << "\"";
    if (from >= 0 && to >= 0 && to < from) {
      out << ";  // conforming\n";
    } else if (manifest.IsAllowed(edge.first, edge.second)) {
      out << " [style=dashed, color=\"#4477aa\", label=\"allowed\"];\n";
    } else {
      out << " [color=\"#cc3311\", penwidth=2.0, label=\"VIOLATION\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace slacker::lint
