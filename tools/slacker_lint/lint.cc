#include "tools/slacker_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace slacker::lint {
namespace {

/// Replaces the bodies of string literals, char literals and comments
/// with spaces (newlines preserved) so the rule regexes never match
/// inside quoted text. Raw strings are handled with the default `R"("`
/// delimiter only — enough for this tree.
std::string MaskCommentsAndStrings(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' && i + 2 < in.size() &&
                   in[i + 2] == '(') {
          state = State::kRaw;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (c == ')' && next == '"') {
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= s.size()) {
    const auto nl = s.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// True if `raw` carries a NOLINT marker that suppresses `rule`: a bare
/// NOLINT suppresses everything; NOLINT(a, b) suppresses only the named
/// rules.
bool Suppressed(const std::string& raw, const std::string& rule) {
  const auto pos = raw.find("NOLINT");
  if (pos == std::string::npos) return false;
  const auto paren = pos + 6;
  if (paren >= raw.size() || raw[paren] != '(') return true;  // Bare NOLINT.
  const auto close = raw.find(')', paren);
  const std::string list =
      raw.substr(paren + 1, close == std::string::npos ? std::string::npos
                                                       : close - paren - 1);
  return list.find(rule) != std::string::npos;
}

bool PathContains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

const char* const kDeclKeywords[] = {
    "return", "co_return", "else",    "delete", "throw", "new",
    "case",   "goto",      "typedef", "using",  "if",    "while",
    "for",    "switch",    "do",      "sizeof", "not"};

bool IsDeclKeyword(const std::string& word) {
  for (const char* k : kDeclKeywords) {
    if (word == k) return true;
  }
  return false;
}

// --- Rule regexes (compiled once) ---------------------------------------

const std::regex& WallclockRe() {
  static const std::regex re(
      R"((std::chrono::)?(system_clock|steady_clock|high_resolution_clock)\s*::|\b(gettimeofday|clock_gettime|localtime|gmtime|strftime)\s*\(|(^|[^\w.>])time\s*\()");
  return re;
}

const std::regex& RawRandRe() {
  static const std::regex re(
      R"(\b(rand|srand|random)\s*\(|std::random_device)");
  return re;
}

/// Byte-level reinterpretation of wire data: reinterpret_cast or raw
/// memcpy decoding. Outside src/codec + src/net (the frame layer) and
/// src/common (ByteReader/ByteWriter internals), wire bytes must go
/// through the checksummed codec/net decoders.
const std::regex& WireDecodeRe() {
  static const std::regex re(R"(\breinterpret_cast\s*<|\bmemcpy\s*\()");
  return re;
}

const std::regex& FloatEqRe() {
  static const std::regex re(
      R"([=!]=\s*[0-9]+\.[0-9]*(e-?[0-9]+)?f?\b|[0-9]+\.[0-9]*(e-?[0-9]+)?f?\s*[=!]=)");
  return re;
}

const std::regex& UnorderedDeclRe() {
  static const std::regex re(
      R"(unordered_(map|set)\s*<[^;]*>\s+(\w+)\s*(;|=|\{))");
  return re;
}

/// `Status Foo(` / `Result<T> Class::Foo(` declaration or definition
/// starting a line (after optional specifiers).
const std::regex& StatusDeclRe() {
  static const std::regex re(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+|constexpr\s+|friend\s+|explicit\s+)*(?:slacker::)?(Status|Result\s*<[^;{}()]*>)\s+(?:\w+::)*(\w+)\s*\()");
  return re;
}

/// Any other `<type> Foo(` declaration starting a line; used to retire
/// names that are ambiguous across the scanned tree.
const std::regex& OtherDeclRe() {
  static const std::regex re(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+|constexpr\s+|friend\s+|explicit\s+)*((?:\w+::)*\w+)(?:\s*<[^;{}()]*>)?(?:\s*[*&]+)?\s+(?:\w+::)*(\w+)\s*\()");
  return re;
}

/// A bare call in statement position: optional `obj.` / `ptr->` /
/// `ns::` qualification chain, a callee name, `(`, and the line must
/// end the statement (`);`).
const std::regex& StatementCallRe() {
  static const std::regex re(
      R"(^\s*((?:[A-Za-z_]\w*(?:\(\))?(?:\.|->|::))*)([A-Za-z_]\w*)\s*\(.*\)\s*;\s*$)");
  return re;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void Linter::AddFile(const std::string& path, const std::string& content) {
  FileEntry entry;
  entry.path = path;
  entry.raw = SplitLines(content);
  entry.masked = SplitLines(MaskCommentsAndStrings(content));
  CollectStatusNames(entry);
  files_.push_back(std::move(entry));
}

void Linter::CollectStatusNames(const FileEntry& file) {
  std::smatch m;
  for (const std::string& line : file.masked) {
    if (std::regex_search(line, m, StatusDeclRe())) {
      status_names_.push_back(m[2].str());
      continue;
    }
    if (std::regex_search(line, m, OtherDeclRe())) {
      const std::string type = m[1].str();
      const std::string name = m[2].str();
      if (IsDeclKeyword(type) || IsDeclKeyword(name)) continue;
      if (type == "Status" || type.rfind("Result", 0) == 0) continue;
      other_names_.push_back(name);
    }
  }
}

std::vector<Finding> Linter::Run() {
  std::sort(status_names_.begin(), status_names_.end());
  status_names_.erase(
      std::unique(status_names_.begin(), status_names_.end()),
      status_names_.end());
  std::sort(other_names_.begin(), other_names_.end());

  std::vector<Finding> findings;
  for (const FileEntry& file : files_) {
    LintFile(file, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

void Linter::LintFile(const FileEntry& file,
                      std::vector<Finding>* out) const {
  const bool in_random_module = PathContains(file.path, "src/common/random");
  const bool in_obs = PathContains(file.path, "src/obs");
  const bool in_byte_layer = PathContains(file.path, "src/codec") ||
                             PathContains(file.path, "src/net") ||
                             PathContains(file.path, "src/common");

  // Names of std::unordered_* members/locals declared in this file, for
  // the src/obs iteration rule.
  std::vector<std::string> unordered_names;
  if (in_obs) {
    std::smatch m;
    for (const std::string& line : file.masked) {
      std::string rest = line;
      while (std::regex_search(rest, m, UnorderedDeclRe())) {
        unordered_names.push_back(m[2].str());
        rest = m.suffix();
      }
    }
  }

  auto emit = [&](int line_index, const char* rule, std::string message) {
    if (Suppressed(file.raw[line_index], rule)) return;
    Finding f;
    f.path = file.path;
    f.line = line_index + 1;
    f.rule = rule;
    f.message = std::move(message);
    out->push_back(std::move(f));
  };

  std::smatch m;
  for (size_t i = 0; i < file.masked.size(); ++i) {
    const std::string& line = file.masked[i];
    if (line.empty()) continue;

    if (std::regex_search(line, WallclockRe())) {
      emit(static_cast<int>(i), "slacker-wallclock",
           "wall-clock read; sim code must take time from the "
           "sim::Simulator clock");
    }

    if (!in_random_module && std::regex_search(line, RawRandRe())) {
      emit(static_cast<int>(i), "slacker-raw-rand",
           "unseeded randomness; draw from an explicitly seeded "
           "slacker::Rng (src/common/random.h) instead");
    }

    if (!in_byte_layer && std::regex_search(line, WireDecodeRe())) {
      emit(static_cast<int>(i), "slacker-wire-decode",
           "raw byte reinterpretation outside the frame layer; decode "
           "wire data through src/codec / src/net (CRC-checked) "
           "instead");
    }

    if (line.find("EXPECT_") == std::string::npos &&
        line.find("ASSERT_") == std::string::npos &&
        std::regex_search(line, FloatEqRe())) {
      emit(static_cast<int>(i), "slacker-float-eq",
           "exact floating-point comparison against a literal; use a "
           "tolerance or NOLINT a deliberate sweep-point check");
    }

    if (in_obs) {
      for (const std::string& name : unordered_names) {
        const std::regex iter_re(
            "for\\s*\\([^;:]*:\\s*" + name + "\\s*\\)|" + name +
            "\\s*\\.\\s*begin\\s*\\(");
        if (std::regex_search(line, iter_re)) {
          emit(static_cast<int>(i), "slacker-unordered-iter",
               "iteration over std::unordered container '" + name +
                   "' in the byte-stable exporter layer; iterate a "
                   "deterministically ordered structure instead");
        }
      }
    }

    if (std::regex_match(line, m, StatementCallRe())) {
      const std::string name = m[2].str();
      if (std::binary_search(status_names_.begin(), status_names_.end(),
                             name) &&
          !std::binary_search(other_names_.begin(), other_names_.end(),
                              name)) {
        // Skip continuation lines: if the previous non-blank masked
        // line does not end a statement/block, this "call" is the tail
        // of a larger expression.
        bool continuation = false;
        for (size_t j = i; j-- > 0;) {
          const std::string& prev = file.masked[j];
          const auto last = prev.find_last_not_of(" \t");
          if (last == std::string::npos) continue;  // Blank line.
          const char end = prev[last];
          continuation = end != ';' && end != '{' && end != '}' &&
                         end != ')' && end != ':';
          break;
        }
        if (!continuation) {
          emit(static_cast<int>(i), "slacker-dropped-status",
               "result of Status/Result-returning call '" + name +
                   "' is dropped; handle it, or cast to (void) with a "
                   "comment explaining why ignoring is safe");
        }
      }
    }
  }
}

int AddPath(Linter* linter, const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || st.type() == fs::file_type::not_found) return -1;

  auto add_one = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp") return 0;
    std::ifstream in(p, std::ios::binary);
    if (!in) return 0;
    std::ostringstream buf;
    buf << in.rdbuf();
    linter->AddFile(p.generic_string(), buf.str());
    return 1;
  };

  if (fs::is_regular_file(st)) return add_one(path);

  int added = 0;
  std::vector<fs::path> entries;
  for (fs::recursive_directory_iterator it(path, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (it->is_directory()) {
      const std::string name = it->path().filename().string();
      if (name == "testdata" || name.rfind("build", 0) == 0 ||
          (!name.empty() && name[0] == '.')) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file()) entries.push_back(it->path());
  }
  // Deterministic scan order regardless of directory enumeration order.
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) added += add_one(p);
  return added;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ",";
    out << "\n  {\"path\": \"" << JsonEscape(f.path)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << JsonEscape(f.rule) << "\", \"message\": \""
        << JsonEscape(f.message) << "\"}";
  }
  if (!findings.empty()) out << "\n";
  out << "]\n";
  return out.str();
}

std::string FindingsToText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

}  // namespace slacker::lint
