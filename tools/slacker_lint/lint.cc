#include "tools/slacker_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "tools/slacker_lint/layering.h"

namespace slacker::lint {
namespace {

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= s.size()) {
    const auto nl = s.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool PathContains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

const char* const kDeclKeywords[] = {
    "return", "co_return", "else",    "delete", "throw", "new",
    "case",   "goto",      "typedef", "using",  "if",    "while",
    "for",    "switch",    "do",      "sizeof", "not"};

bool IsDeclKeyword(const std::string& word) {
  for (const char* k : kDeclKeywords) {
    if (word == k) return true;
  }
  return false;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `name` occurs in `text` as a whole identifier.
bool ContainsWord(const std::string& text, const std::string& name) {
  std::string::size_type pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(text[pos - 1]);
    const auto end = pos + name.size();
    const bool right_ok = end >= text.size() || !IsWordChar(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

// --- Rule regexes (compiled once) ---------------------------------------

const std::regex& WallclockRe() {
  static const std::regex re(
      R"((std::chrono::)?(system_clock|steady_clock|high_resolution_clock)\s*::|\b(gettimeofday|clock_gettime|localtime|gmtime|strftime)\s*\(|(^|[^\w.>])time\s*\()");
  return re;
}

const std::regex& RawRandRe() {
  static const std::regex re(
      R"(\b(rand|srand|random)\s*\(|std::random_device)");
  return re;
}

/// Byte-level reinterpretation of wire data: reinterpret_cast or raw
/// memcpy decoding. Outside src/codec + src/net (the frame layer) and
/// src/common (ByteReader/ByteWriter internals), wire bytes must go
/// through the checksummed codec/net decoders.
const std::regex& WireDecodeRe() {
  static const std::regex re(R"(\breinterpret_cast\s*<|\bmemcpy\s*\()");
  return re;
}

const std::regex& FloatEqRe() {
  static const std::regex re(
      R"([=!]=\s*[0-9]+\.[0-9]*(e-?[0-9]+)?f?\b|[0-9]+\.[0-9]*(e-?[0-9]+)?f?\s*[=!]=)");
  return re;
}

const std::regex& UnorderedDeclRe() {
  static const std::regex re(
      R"(unordered_(map|set)\s*<[^;]*>\s+(\w+)\s*(;|=|\{))");
  return re;
}

/// `Status Foo(` / `Result<T> Class::Foo(` declaration or definition
/// starting a line (after optional specifiers).
const std::regex& StatusDeclRe() {
  static const std::regex re(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+|constexpr\s+|friend\s+|explicit\s+)*(?:slacker::)?(Status|Result\s*<[^;{}()]*>)\s+(?:\w+::)*(\w+)\s*\()");
  return re;
}

/// Any other `<type> Foo(` declaration starting a line; used to retire
/// names that are ambiguous across the scanned tree.
const std::regex& OtherDeclRe() {
  static const std::regex re(
      R"(^\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+|constexpr\s+|friend\s+|explicit\s+)*((?:\w+::)*\w+)(?:\s*<[^;{}()]*>)?(?:\s*[*&]+)?\s+(?:\w+::)*(\w+)\s*\()");
  return re;
}

/// A bare call in statement position: optional `obj.` / `ptr->` /
/// `ns::` qualification chain, a callee name, `(`, and the line must
/// end the statement (`);`).
const std::regex& StatementCallRe() {
  static const std::regex re(
      R"(^\s*((?:[A-Za-z_]\w*(?:\(\))?(?:\.|->|::))*)([A-Za-z_]\w*)\s*\(.*\)\s*;\s*$)");
  return re;
}

/// A named enum declaration (plain or scoped).
const std::regex& EnumDeclRe() {
  static const std::regex re(R"(\benum\s+(?:class\s+|struct\s+)?(\w+))");
  return re;
}

/// `Status s = ...` / `Result<T> s = ...` / bare `Status s` local
/// declaration, matched against a whole (joined) statement.
const std::regex& StatusLocalRe() {
  static const std::regex re(
      R"(^\s*(?:const\s+)?(?:slacker::)?(?:Status|Result\s*<[^;{}]*>)\s+(\w+)\s*(=(?!=)|$))");
  return re;
}

/// `name = <rest>` pure reassignment (not ==, not +=).
const std::regex& ReassignRe() {
  static const std::regex re(R"(^\s*(\w+)\s*=(?!=)(.*)$)");
  return re;
}

/// A NOLINT marker at the start of a comment (distinguishes real
/// markers from prose that merely mentions NOLINT).
const std::regex& NolintMarkerRe() {
  static const std::regex re(R"(//\s*NOLINT\b\s*(\(([^)]*)\))?)");
  return re;
}

std::string Trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MaskCommentsAndStrings(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' && i + 2 < in.size() &&
                   in[i + 2] == '(') {
          state = State::kRaw;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (c == ')' && next == '"') {
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

bool IsSuppressed(const std::string& raw_line, const std::string& rule) {
  const auto pos = raw_line.find("NOLINT");
  if (pos == std::string::npos) return false;
  const auto paren = pos + 6;
  if (paren >= raw_line.size() || raw_line[paren] != '(') {
    return true;  // Bare NOLINT.
  }
  const auto close = raw_line.find(')', paren);
  const std::string list = raw_line.substr(
      paren + 1,
      close == std::string::npos ? std::string::npos : close - paren - 1);
  return list.find(rule) != std::string::npos;
}

void Linter::AddFile(const std::string& path, const std::string& content) {
  FileEntry entry;
  entry.path = path;
  entry.raw = SplitLines(content);
  entry.masked = SplitLines(MaskCommentsAndStrings(content));
  CollectDeclarations(entry);
  files_.push_back(std::move(entry));
}

void Linter::NoteSuppressionUsed(const std::string& path, int line) {
  suppressions_used_.insert({path, line});
}

void Linter::CollectDeclarations(const FileEntry& file) {
  std::smatch m;
  for (const std::string& line : file.masked) {
    std::string rest = line;
    while (std::regex_search(rest, m, EnumDeclRe())) {
      enum_names_.push_back(m[1].str());
      rest = m.suffix();
    }
    if (std::regex_search(line, m, StatusDeclRe())) {
      status_names_.push_back(m[2].str());
      continue;
    }
    if (std::regex_search(line, m, OtherDeclRe())) {
      const std::string type = m[1].str();
      const std::string name = m[2].str();
      if (IsDeclKeyword(type) || IsDeclKeyword(name)) continue;
      if (type == "Status" || type.rfind("Result", 0) == 0) continue;
      other_names_.push_back(name);
    }
  }
}

std::vector<Finding> Linter::Run() {
  std::sort(status_names_.begin(), status_names_.end());
  status_names_.erase(
      std::unique(status_names_.begin(), status_names_.end()),
      status_names_.end());
  std::sort(other_names_.begin(), other_names_.end());
  std::sort(enum_names_.begin(), enum_names_.end());
  enum_names_.erase(std::unique(enum_names_.begin(), enum_names_.end()),
                    enum_names_.end());

  std::vector<Finding> findings;
  for (const FileEntry& file : files_) {
    LintFile(file, &findings);
    LintFlow(file, &findings);
  }
  // After every suppression has been exercised (or not): stale-marker
  // detection.
  for (const FileEntry& file : files_) {
    LintUnusedNolint(file, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

void Linter::Emit(const FileEntry& file, int line_index, const char* rule,
                  std::string message, std::vector<Finding>* out) {
  if (IsSuppressed(file.raw[line_index], rule)) {
    suppressions_used_.insert({file.path, line_index + 1});
    return;
  }
  Finding f;
  f.path = file.path;
  f.line = line_index + 1;
  f.rule = rule;
  f.message = std::move(message);
  out->push_back(std::move(f));
}

void Linter::LintFile(const FileEntry& file, std::vector<Finding>* out) {
  const bool in_random_module = PathContains(file.path, "src/common/random");
  const bool in_obs = PathContains(file.path, "src/obs");
  const bool in_byte_layer = PathContains(file.path, "src/codec") ||
                             PathContains(file.path, "src/net") ||
                             PathContains(file.path, "src/common");

  // Names of std::unordered_* members/locals declared in this file, for
  // the src/obs iteration rule.
  std::vector<std::string> unordered_names;
  if (in_obs) {
    std::smatch m;
    for (const std::string& line : file.masked) {
      std::string rest = line;
      while (std::regex_search(rest, m, UnorderedDeclRe())) {
        unordered_names.push_back(m[2].str());
        rest = m.suffix();
      }
    }
  }

  std::smatch m;
  for (size_t i = 0; i < file.masked.size(); ++i) {
    const std::string& line = file.masked[i];
    if (line.empty()) continue;

    if (std::regex_search(line, WallclockRe())) {
      Emit(file, static_cast<int>(i), "slacker-wallclock",
           "wall-clock read; sim code must take time from the "
           "sim::Simulator clock",
           out);
    }

    if (!in_random_module && std::regex_search(line, RawRandRe())) {
      Emit(file, static_cast<int>(i), "slacker-raw-rand",
           "unseeded randomness; draw from an explicitly seeded "
           "slacker::Rng (src/common/random.h) instead",
           out);
    }

    if (!in_byte_layer && std::regex_search(line, WireDecodeRe())) {
      Emit(file, static_cast<int>(i), "slacker-wire-decode",
           "raw byte reinterpretation outside the frame layer; decode "
           "wire data through src/codec / src/net (CRC-checked) "
           "instead",
           out);
    }

    if (line.find("EXPECT_") == std::string::npos &&
        line.find("ASSERT_") == std::string::npos &&
        std::regex_search(line, FloatEqRe())) {
      Emit(file, static_cast<int>(i), "slacker-float-eq",
           "exact floating-point comparison against a literal; use a "
           "tolerance or NOLINT a deliberate sweep-point check",
           out);
    }

    if (in_obs) {
      for (const std::string& name : unordered_names) {
        const std::regex iter_re(
            "for\\s*\\([^;:]*:\\s*" + name + "\\s*\\)|" + name +
            "\\s*\\.\\s*begin\\s*\\(");
        if (std::regex_search(line, iter_re)) {
          Emit(file, static_cast<int>(i), "slacker-unordered-iter",
               "iteration over std::unordered container '" + name +
                   "' in the byte-stable exporter layer; iterate a "
                   "deterministically ordered structure instead",
               out);
        }
      }
    }

    if (std::regex_match(line, m, StatementCallRe())) {
      const std::string name = m[2].str();
      if (std::binary_search(status_names_.begin(), status_names_.end(),
                             name) &&
          !std::binary_search(other_names_.begin(), other_names_.end(),
                              name)) {
        // Skip continuation lines: if the previous non-blank masked
        // line does not end a statement/block, this "call" is the tail
        // of a larger expression.
        bool continuation = false;
        for (size_t j = i; j-- > 0;) {
          const std::string& prev = file.masked[j];
          const auto last = prev.find_last_not_of(" \t");
          if (last == std::string::npos) continue;  // Blank line.
          const char end = prev[last];
          continuation = end != ';' && end != '{' && end != '}' &&
                         end != ')' && end != ':';
          break;
        }
        if (!continuation) {
          Emit(file, static_cast<int>(i), "slacker-dropped-status",
               "result of Status/Result-returning call '" + name +
                   "' is dropped; handle it, or cast to (void) with a "
                   "comment explaining why ignoring is safe",
               out);
        }
      }
    }
  }
}

void Linter::LintFlow(const FileEntry& file, std::vector<Finding>* out) {
  struct Local {
    std::string name;
    int line = 0;  // 0-based decl line.
    bool used = false;
  };
  struct Scope {
    char kind = 'c';  // 'c' code, 't' type, 'n' namespace, 's' switch,
                      // 'i' initializer list.
    std::vector<Local> locals;
    std::string switch_enum;  // 's' only: project enum in a case label.
    int default_line = -1;    // 's' only: 0-based `default:` line.
  };
  std::vector<Scope> stack;
  std::string stmt;
  int stmt_line = -1;

  const auto top_kind = [&]() -> char {
    return stack.empty() ? 'n' : stack.back().kind;
  };

  // Any tracked local mentioned in `text` (other than `skip`) is used.
  const auto mark_uses = [&](const std::string& text,
                             const std::string& skip) {
    for (Scope& scope : stack) {
      for (Local& local : scope.locals) {
        if (local.used || local.name == skip) continue;
        if (ContainsWord(text, local.name)) local.used = true;
      }
    }
  };

  const auto find_local = [&](const std::string& name) -> Local* {
    for (auto scope = stack.rbegin(); scope != stack.rend(); ++scope) {
      for (Local& local : scope->locals) {
        if (local.name == name) return &local;
      }
    }
    return nullptr;
  };

  // Processes the accumulated statement text when it is terminated by
  // `;` (complete statement) or consumed by `{` (block header).
  const auto flush_stmt = [&](char delimiter) {
    const std::string text = Trim(stmt);
    stmt.clear();
    const int line = stmt_line;
    stmt_line = -1;
    if (text.empty() || line < 0) return;

    const char kind = top_kind();
    std::smatch m;
    if (kind == 'c' || kind == 's') {
      if (delimiter == ';' && std::regex_search(text, m, StatusLocalRe())) {
        // New tracked local; its initializer may use other locals.
        mark_uses(text, m[1].str());
        stack.back().locals.push_back({m[1].str(), line, false});
        return;
      }
      if (std::regex_match(text, m, ReassignRe()) &&
          find_local(m[1].str()) != nullptr) {
        // Plain overwrite: reads nothing from the LHS. The RHS still
        // counts as a use of anything it mentions (including the LHS
        // local itself, e.g. `s = Wrap(s)`).
        mark_uses(m[2].str(), "");
        return;
      }
      mark_uses(text, "");
      if (kind == 's') {
        Scope& sw = stack.back();
        if (std::regex_search(text, m, std::regex(R"((^|[^\w])case\s)"))) {
          std::string rest = text;
          while (std::regex_search(rest, m, std::regex(R"((\w+)\s*::)"))) {
            if (std::binary_search(enum_names_.begin(), enum_names_.end(),
                                   m[1].str())) {
              sw.switch_enum = m[1].str();
              break;
            }
            rest = m.suffix();
          }
        }
        if (std::regex_search(text, std::regex(R"((^|[^\w])default\s*:)"))) {
          sw.default_line = line;
        }
      }
    } else {
      // Type/namespace/initializer scope: nothing tracked, but a
      // statement can still mention a local (default member init never
      // can, yet lambdas inside initializers can).
      mark_uses(text, "");
    }
  };

  const auto classify_open = [&](const std::string& header) -> char {
    const std::string text = Trim(header);
    if (text.empty()) return top_kind() == 'i' ? 'i' : 'c';
    if (std::regex_search(
            text, std::regex(R"((^|[\s;{}])(class|struct|union|enum)\b)")) &&
        text.find('(') == std::string::npos) {
      return 't';
    }
    if (std::regex_search(text, std::regex(R"((^|[\s;{}])namespace\b)"))) {
      return 'n';
    }
    if (std::regex_search(text, std::regex(R"((^|[\s;{}])switch\s*\()"))) {
      return 's';
    }
    const char last = text[text.size() - 1];
    if (last == '=' || last == ',' || last == '(') return 'i';
    return 'c';
  };

  const auto close_scope = [&]() {
    if (stack.empty()) return;
    const Scope scope = stack.back();
    stack.pop_back();
    for (const Local& local : scope.locals) {
      if (local.used) continue;
      Emit(file, local.line, "slacker-dropped-status",
           "'" + local.name +
               "' holds a Status/Result that is never branched on, "
               "returned, or passed on before scope exit; handle it or "
               "annotate the deliberate drop",
           out);
    }
    if (scope.kind == 's' && !scope.switch_enum.empty() &&
        scope.default_line >= 0) {
      Emit(file, scope.default_line, "slacker-default-switch",
           "default: arm in a switch over project enum '" +
               scope.switch_enum +
               "' silently swallows new enumerators; enumerate the "
               "remaining cases (-Wswitch then flags additions) or "
               "NOLINT with a reason",
           out);
    }
  };

  bool in_preprocessor = false;
  for (size_t i = 0; i < file.masked.size(); ++i) {
    const std::string& line = file.masked[i];
    // Preprocessor lines (and their backslash continuations) follow
    // different brace rules — skip them entirely.
    const std::string trimmed = Trim(line);
    const bool continues = !trimmed.empty() && trimmed.back() == '\\';
    if (in_preprocessor) {
      in_preprocessor = continues;
      continue;
    }
    if (!trimmed.empty() && trimmed[0] == '#') {
      in_preprocessor = continues;
      continue;
    }

    for (const char c : line) {
      if (c == '{') {
        const char kind = classify_open(stmt);
        flush_stmt('{');
        stack.push_back(Scope{kind, {}, "", -1});
      } else if (c == '}') {
        flush_stmt('}');
        close_scope();
      } else if (c == ';') {
        flush_stmt(';');
      } else {
        if (stmt_line < 0 && !std::isspace(static_cast<unsigned char>(c))) {
          stmt_line = static_cast<int>(i);
        }
        stmt += c;
      }
    }
    stmt += ' ';  // Line break separates tokens.
  }
  // Unbalanced braces at EOF: close what remains so decls still report.
  flush_stmt(';');
  while (!stack.empty()) close_scope();
}

void Linter::LintUnusedNolint(const FileEntry& file,
                              std::vector<Finding>* out) const {
  std::smatch m;
  for (size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& raw = file.raw[i];
    if (raw.find("NOLINT") == std::string::npos) continue;
    if (!std::regex_search(raw, m, NolintMarkerRe())) continue;

    std::string label = "NOLINT";
    if (m[1].matched) {
      // Listed rules: only markers claiming at least one slacker-*
      // rule are ours to police (clang-tidy names are someone else's).
      const std::string list = m[2].str();
      bool any_slacker = false;
      bool keep = false;
      std::string::size_type start = 0;
      while (start <= list.size()) {
        const auto comma = list.find(',', start);
        const std::string entry = Trim(
            comma == std::string::npos ? list.substr(start)
                                       : list.substr(start, comma - start));
        if (entry.rfind("slacker-", 0) == 0) any_slacker = true;
        if (entry == "slacker-unused-nolint") keep = true;
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (!any_slacker || keep) continue;
      label = "NOLINT(" + list + ")";
    }
    if (suppressions_used_.count({file.path, static_cast<int>(i) + 1}) !=
        0) {
      continue;
    }
    // Deliberately not routed through Emit(): a bare NOLINT would
    // suppress its own staleness finding.
    Finding f;
    f.path = file.path;
    f.line = static_cast<int>(i) + 1;
    f.rule = "slacker-unused-nolint";
    f.message = label +
                " suppressed nothing in this run; delete the stale "
                "marker (clang-tidy suppressions must name their check)";
    out->push_back(std::move(f));
  }
}

int AddPath(Linter* linter, const std::string& path, LayerAnalyzer* also) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || st.type() == fs::file_type::not_found) return -1;

  auto add_one = [&](const fs::path& p) {
    const std::string ext = p.extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp") return 0;
    std::ifstream in(p, std::ios::binary);
    if (!in) return 0;
    std::ostringstream buf;
    buf << in.rdbuf();
    linter->AddFile(p.generic_string(), buf.str());
    if (also != nullptr) also->AddFile(p.generic_string(), buf.str());
    return 1;
  };

  if (fs::is_regular_file(st)) return add_one(path);

  int added = 0;
  std::vector<fs::path> entries;
  for (fs::recursive_directory_iterator it(path, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (it->is_directory()) {
      const std::string name = it->path().filename().string();
      if (name == "testdata" || name.rfind("build", 0) == 0 ||
          (!name.empty() && name[0] == '.')) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file()) entries.push_back(it->path());
  }
  // Deterministic scan order regardless of directory enumeration order.
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) added += add_one(p);
  return added;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ",";
    out << "\n  {\"path\": \"" << JsonEscape(f.path)
        << "\", \"line\": " << f.line << ", \"rule\": \""
        << JsonEscape(f.rule) << "\", \"message\": \""
        << JsonEscape(f.message) << "\"}";
  }
  if (!findings.empty()) out << "\n";
  out << "]\n";
  return out.str();
}

std::string FindingsToText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

}  // namespace slacker::lint
