#include "tools/slacker_lint/layering.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace slacker::lint {
namespace {

// A miniature manifest mirroring the real contract's shape.
constexpr char kManifestJson[] = R"json({
  "layers": [
    ["common"],
    ["sim", "net", "resource"],
    ["obs", "engine"]
  ],
  "allow": [
    {"from": "net", "to": "resource", "why": "channel/link pairing"}
  ]
})json";

LayerManifest TestManifest() {
  LayerManifest manifest;
  std::string error;
  EXPECT_TRUE(ParseLayerManifest(kManifestJson, &manifest, &error)) << error;
  return manifest;
}

/// Loads every fixture file under testdata/layering/<tree> into an
/// analyzer (and a throwaway Linter) via the production AddPath.
int LoadFixtureTree(const std::string& tree, LayerAnalyzer* analyzer) {
  Linter linter;
  return AddPath(&linter,
                 std::string(SLACKER_LINT_TESTDATA) + "/layering/" + tree,
                 analyzer);
}

TEST(LayerManifestTest, ParsesLayersAndAllowList) {
  const LayerManifest manifest = TestManifest();
  EXPECT_EQ(manifest.LayerOf("common"), 0);
  EXPECT_EQ(manifest.LayerOf("net"), 1);
  EXPECT_EQ(manifest.LayerOf("engine"), 2);
  EXPECT_EQ(manifest.LayerOf("nonexistent"), -1);
  EXPECT_TRUE(manifest.IsAllowed("net", "resource"));
  EXPECT_FALSE(manifest.IsAllowed("resource", "net"));
}

TEST(LayerManifestTest, RejectsMalformedManifests) {
  LayerManifest m;
  std::string error;
  // Duplicate module.
  EXPECT_FALSE(ParseLayerManifest(
      R"({"layers": [["a"], ["a"]], "allow": []})", &m, &error));
  // Allow edge naming an undeclared module.
  EXPECT_FALSE(ParseLayerManifest(
      R"({"layers": [["a"], ["b"]],
          "allow": [{"from": "b", "to": "zz", "why": "w"}]})",
      &m, &error));
  // Downward allow edge (already legal, must be removed).
  EXPECT_FALSE(ParseLayerManifest(
      R"({"layers": [["a"], ["b"]],
          "allow": [{"from": "b", "to": "a", "why": "w"}]})",
      &m, &error));
  // Missing rationale.
  EXPECT_FALSE(ParseLayerManifest(
      R"({"layers": [["a"], ["b"]],
          "allow": [{"from": "a", "to": "b"}]})",
      &m, &error));
  // Not JSON at all.
  EXPECT_FALSE(ParseLayerManifest("layers: nope", &m, &error));
  EXPECT_FALSE(error.empty());
}

TEST(LayeringTest, PathNormalizationAndModuleOwnership) {
  EXPECT_EQ(NormalizePath("/abs/repo/src/net/wire.h"), "src/net/wire.h");
  EXPECT_EQ(NormalizePath("bench/harness.cc"), "bench/harness.cc");
  EXPECT_EQ(NormalizePath("gtest/gtest.h"), "");
  EXPECT_EQ(ModuleOf("src/net/wire.h"), "net");
  EXPECT_EQ(ModuleOf("bench/harness.cc"), "bench");
  EXPECT_EQ(ModuleOf("gtest/gtest.h"), "");
}

TEST(LayeringTest, UpwardIncludeFixtureIsFlagged) {
  LayerAnalyzer analyzer;
  ASSERT_EQ(LoadFixtureTree("upward", &analyzer), 2);
  const std::vector<Finding> findings = analyzer.Run(TestManifest());
  ASSERT_EQ(findings.size(), 1u) << FindingsToText(findings);
  EXPECT_EQ(findings[0].rule, "slacker-layering");
  EXPECT_EQ(findings[0].line, 5);  // The #include line in disk.h.
  EXPECT_NE(findings[0].path.find("src/resource/disk.h"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("upward"), std::string::npos);
}

TEST(LayeringTest, AllowedEdgeFixtureIsQuiet) {
  LayerAnalyzer analyzer;
  ASSERT_EQ(LoadFixtureTree("exempt", &analyzer), 2);
  const std::vector<Finding> findings = analyzer.Run(TestManifest());
  EXPECT_TRUE(findings.empty()) << FindingsToText(findings);
}

TEST(LayeringTest, IncludeCycleFixtureIsFlagged) {
  LayerAnalyzer analyzer;
  ASSERT_EQ(LoadFixtureTree("cycle", &analyzer), 2);
  const std::vector<Finding> findings = analyzer.Run(TestManifest());
  ASSERT_EQ(findings.size(), 1u) << FindingsToText(findings);
  EXPECT_EQ(findings[0].rule, "slacker-include-cycle");
  EXPECT_NE(findings[0].message.find("src/net/a.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/net/b.h"), std::string::npos);
}

TEST(LayeringTest, ModuleCycleIsFlaggedEvenWithoutFileCycle) {
  // net -> resource is allowed; a resource file including a *different*
  // net header closes a module-level cycle with no file-level cycle.
  LayerAnalyzer analyzer;
  analyzer.AddFile("src/net/chan.h", "#include \"src/resource/link.h\"\n");
  analyzer.AddFile("src/resource/link.h", "\n");
  analyzer.AddFile("src/resource/meter.h", "#include \"src/net/wire.h\"\n");
  analyzer.AddFile("src/net/wire.h", "\n");
  const std::vector<Finding> findings = analyzer.Run(TestManifest());
  bool module_cycle = false;
  for (const Finding& f : findings) {
    if (f.rule == "slacker-module-cycle") module_cycle = true;
  }
  EXPECT_TRUE(module_cycle) << FindingsToText(findings);
}

TEST(LayeringTest, NolintSuppressionIsHonoredAndRecorded) {
  LayerAnalyzer analyzer;
  analyzer.AddFile(
      "src/resource/disk.h",
      "#include \"src/obs/metric.h\"  // NOLINT(slacker-layering): test.\n");
  analyzer.AddFile("src/obs/metric.h", "\n");
  const std::vector<Finding> findings = analyzer.Run(TestManifest());
  EXPECT_TRUE(findings.empty()) << FindingsToText(findings);
  ASSERT_EQ(analyzer.used_suppressions().size(), 1u);
  EXPECT_EQ(analyzer.used_suppressions()[0].path, "src/resource/disk.h");
  EXPECT_EQ(analyzer.used_suppressions()[0].line, 1);
}

TEST(LayeringTest, ReportAndDotAreByteDeterministic) {
  // Two independent runs over the same fixture tree must serialize to
  // byte-identical JSON and DOT (CI double-runs and compares).
  std::string json[2];
  std::string dot[2];
  for (int i = 0; i < 2; ++i) {
    LayerAnalyzer analyzer;
    LoadFixtureTree("upward", &analyzer);
    LoadFixtureTree("cycle", &analyzer);
    const LayerManifest manifest = TestManifest();
    json[i] = FindingsToJson(analyzer.Run(manifest));
    dot[i] = analyzer.ModuleGraphDot(manifest);
  }
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(dot[0], dot[1]);
  EXPECT_NE(dot[0].find("digraph slacker_modules"), std::string::npos);
  EXPECT_NE(dot[0].find("VIOLATION"), std::string::npos);
}

TEST(LayeringTest, CheckedInManifestParses) {
  // The real contract file must always be loadable — the tree ctest
  // and CI lint job both feed it to --layers.
  std::ifstream in(std::string(SLACKER_LINT_LAYERS), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing " << SLACKER_LINT_LAYERS;
  std::ostringstream buf;
  buf << in.rdbuf();
  LayerManifest manifest;
  std::string error;
  EXPECT_TRUE(ParseLayerManifest(buf.str(), &manifest, &error)) << error;
  EXPECT_GE(manifest.layers.size(), 4u);
  EXPECT_EQ(manifest.LayerOf("common"), 0);
}

}  // namespace
}  // namespace slacker::lint
