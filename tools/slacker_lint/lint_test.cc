#include "tools/slacker_lint/lint.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace slacker::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(SLACKER_LINT_TESTDATA) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> LintSnippet(const std::string& fixture,
                                 const std::string& as_path) {
  Linter linter;
  linter.AddFile(as_path, ReadFixture(fixture));
  return linter.Run();
}

TEST(SlackerLintTest, ViolationsFixtureProducesExactFindings) {
  const std::vector<Finding> findings =
      LintSnippet("violations.snippet", "src/obs/violations.cc");

  // (line, rule) pairs, in (path, line, rule) order. The fixture pins
  // these line numbers in its comments.
  const std::vector<std::pair<int, std::string>> expected = {
      {12, "slacker-wallclock"},      {13, "slacker-wallclock"},
      {17, "slacker-raw-rand"},       {18, "slacker-raw-rand"},
      {22, "slacker-float-eq"},       {23, "slacker-float-eq"},
      {31, "slacker-unordered-iter"}, {33, "slacker-unordered-iter"},
      {37, "slacker-dropped-status"}, {38, "slacker-dropped-status"},
      {41, "slacker-dropped-status"},  // flow: local never consumed.
      {46, "slacker-wire-decode"},    {47, "slacker-wire-decode"},
  };
  ASSERT_EQ(findings.size(), expected.size())
      << FindingsToText(findings);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(findings[i].line, expected[i].first) << i;
    EXPECT_EQ(findings[i].rule, expected[i].second) << i;
    EXPECT_EQ(findings[i].path, "src/obs/violations.cc");
    EXPECT_FALSE(findings[i].message.empty());
  }
}

TEST(SlackerLintTest, CleanFixtureProducesNoFindings) {
  const std::vector<Finding> findings =
      LintSnippet("clean.snippet", "src/obs/clean.cc");
  EXPECT_TRUE(findings.empty()) << FindingsToText(findings);
}

TEST(SlackerLintTest, RandomModuleIsExemptFromRawRand) {
  Linter linter;
  linter.AddFile("src/common/random.cc",
                 "void Seed() { std::random_device rd; }\n");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(SlackerLintTest, UnorderedIterationOnlyFlaggedUnderObs) {
  const std::string code =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m_;\n"
      "void F() {\n"
      "  for (const auto& kv : m_) {\n"
      "  }\n"
      "}\n";
  Linter obs;
  obs.AddFile("src/obs/exporter.cc", code);
  ASSERT_EQ(obs.Run().size(), 1u);

  Linter engine;
  engine.AddFile("src/engine/cache.cc", code);
  EXPECT_TRUE(engine.Run().empty());
}

TEST(SlackerLintTest, WireDecodeOnlyFlaggedOutsideFrameLayer) {
  const std::string code =
      "void F(const unsigned char* b, char* d) {\n"
      "  memcpy(d, b, 4);\n"
      "  auto* h = reinterpret_cast<const int*>(b);\n"
      "}\n";
  for (const char* exempt : {"src/codec/frame.cc", "src/net/message.cc",
                             "src/common/bytes.cc"}) {
    Linter linter;
    linter.AddFile(exempt, code);
    EXPECT_TRUE(linter.Run().empty()) << exempt;
  }
  Linter outside;
  outside.AddFile("src/slacker/migration.cc", code);
  const auto findings = outside.Run();
  ASSERT_EQ(findings.size(), 2u) << FindingsToText(findings);
  EXPECT_EQ(findings[0].rule, "slacker-wire-decode");
  EXPECT_EQ(findings[1].rule, "slacker-wire-decode");
}

TEST(SlackerLintTest, AmbiguousNamesAreNotFlagged) {
  // `Start` returns Status in one class and void in another: the
  // statement-position rule must stay quiet about it.
  Linter linter;
  linter.AddFile("src/a.h", "Status Start();\n");
  linter.AddFile("src/b.h", "void Start();\n");
  linter.AddFile("src/c.cc", "void F() {\n  Start();\n}\n");
  EXPECT_TRUE(linter.Run().empty());
}

TEST(SlackerLintTest, QualifiedAndMemberCallsAreFlagged) {
  Linter linter;
  linter.AddFile("src/a.h", "Status Replay(int x);\n");
  linter.AddFile("src/c.cc",
                 "void F(Thing* t) {\n"
                 "  wal::Replay(1);\n"
                 "  t->Replay(2);\n"
                 "}\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 2u) << FindingsToText(findings);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
}

TEST(SlackerLintTest, ContinuationLinesAreNotStatementPosition) {
  Linter linter;
  linter.AddFile("src/a.h", "Status Baz(int x);\n");
  linter.AddFile("src/c.cc",
                 "void F() {\n"
                 "  Consume(1,\n"
                 "          Baz(2));\n"
                 "}\n");
  EXPECT_TRUE(linter.Run().empty()) << FindingsToText(linter.Run());
}

TEST(SlackerLintTest, FlowDroppedLocalIsFlaggedAtDeclaration) {
  Linter linter;
  linter.AddFile("src/c.cc",
                 "Status Fetch();\n"
                 "void F() {\n"
                 "  Status s = Fetch();\n"
                 "}\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u) << FindingsToText(findings);
  EXPECT_EQ(findings[0].rule, "slacker-dropped-status");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(SlackerLintTest, FlowConsumedLocalsAreQuiet) {
  // Branch, return, (void), pass-as-argument, and reassignment-with-
  // self-use each count as consumption.
  Linter linter;
  linter.AddFile("src/c.cc",
                 "Status Fetch();\n"
                 "void Sink(Status s);\n"
                 "Status G() {\n"
                 "  Status a = Fetch();\n"
                 "  if (!a.ok()) return a;\n"
                 "  Status b = Fetch();\n"
                 "  (void)b;\n"
                 "  Status c = Fetch();\n"
                 "  Sink(std::move(c));\n"
                 "  Status d = Fetch();\n"
                 "  d = Wrap(d);\n"
                 "  return d;\n"
                 "}\n");
  EXPECT_TRUE(linter.Run().empty()) << FindingsToText(linter.Run());
}

TEST(SlackerLintTest, FlowPlainOverwriteIsNotConsumption) {
  // `t` is assigned twice and never read: both values are dropped.
  Linter linter;
  linter.AddFile("src/c.cc",
                 "Status Fetch();\n"
                 "void F() {\n"
                 "  Status t = Fetch();\n"
                 "  t = Fetch();\n"
                 "}\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u) << FindingsToText(findings);
  EXPECT_EQ(findings[0].rule, "slacker-dropped-status");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(SlackerLintTest, DefaultSwitchOverProjectEnumIsFlagged) {
  Linter linter;
  linter.AddFile("src/a.h", "enum class Kind { kA, kB };\n");
  linter.AddFile("src/c.cc",
                 "void F(Kind k) {\n"
                 "  switch (k) {\n"
                 "    case Kind::kA:\n"
                 "      break;\n"
                 "    default:\n"
                 "      break;\n"
                 "  }\n"
                 "}\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 1u) << FindingsToText(findings);
  EXPECT_EQ(findings[0].rule, "slacker-default-switch");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(SlackerLintTest, DefaultSwitchOverNonEnumOrSuppressedIsQuiet) {
  Linter linter;
  linter.AddFile("src/a.h", "enum class Kind { kA, kB };\n");
  linter.AddFile("src/c.cc",
                 "void F(int x, Kind k) {\n"
                 "  switch (x) {\n"
                 "    case 1:\n"
                 "      break;\n"
                 "    default:\n"
                 "      break;\n"
                 "  }\n"
                 "  switch (k) {\n"
                 "    case Kind::kA:\n"
                 "      break;\n"
                 "    default:  // NOLINT(slacker-default-switch): wire enum.\n"
                 "      break;\n"
                 "  }\n"
                 "}\n");
  EXPECT_TRUE(linter.Run().empty()) << FindingsToText(linter.Run());
}

TEST(SlackerLintTest, UnusedNolintMarkersAreFlagged) {
  Linter linter;
  linter.AddFile("src/c.cc",
                 "void F() {\n"
                 "  int x = 0;  // NOLINT\n"
                 "  int y = 0;  // NOLINT(slacker-wallclock)\n"
                 "  (void)x;\n"
                 "  (void)y;\n"
                 "}\n");
  const auto findings = linter.Run();
  ASSERT_EQ(findings.size(), 2u) << FindingsToText(findings);
  EXPECT_EQ(findings[0].rule, "slacker-unused-nolint");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].rule, "slacker-unused-nolint");
  EXPECT_EQ(findings[1].line, 3);
}

TEST(SlackerLintTest, ForeignAndExercisedNolintMarkersAreQuiet) {
  Linter linter;
  linter.AddFile("src/c.cc",
                 // Exercised: float-eq actually fires on this line.
                 "bool F(double v) { return v == 1.5; }"
                 "  // NOLINT(slacker-float-eq): sweep point.\n"
                 // Foreign: clang-tidy's business, not ours.
                 "int g(int x) { return x; }  // NOLINT(bugprone-foo)\n");
  EXPECT_TRUE(linter.Run().empty()) << FindingsToText(linter.Run());
}

TEST(SlackerLintTest, NoteSuppressionUsedProtectsMarker) {
  // A marker exercised by an external pass (the layering analyzer)
  // must not be reported stale.
  Linter linter;
  linter.AddFile("src/c.cc",
                 "int a;  // NOLINT(slacker-layering): fixture.\n");
  const auto stale = [&] {
    Linter fresh;
    fresh.AddFile("src/c.cc",
                  "int a;  // NOLINT(slacker-layering): fixture.\n");
    return fresh.Run();
  }();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].rule, "slacker-unused-nolint");

  linter.NoteSuppressionUsed("src/c.cc", 1);
  EXPECT_TRUE(linter.Run().empty());
}

TEST(SlackerLintTest, JsonReportIsStableAndEscaped) {
  std::vector<Finding> findings;
  Finding f;
  f.path = "src/a \"quoted\".cc";
  f.line = 7;
  f.rule = "slacker-wallclock";
  f.message = "msg";
  findings.push_back(f);
  const std::string json = FindingsToJson(findings);
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(FindingsToJson({}), "[]\n");
}

}  // namespace
}  // namespace slacker::lint
